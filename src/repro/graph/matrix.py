"""Column-stochastic transition matrices over the similarity graph.

Markov clustering walks the similarity graph with a column-stochastic
transition matrix ``M``: ``M[j, c]`` is the probability that a random walk
standing at sequence ``c`` steps to sequence ``j``.  This module wraps that
matrix in :class:`StochasticMatrix` and supplies the three MCL operators —
expansion (``M·M`` through the SpGEMM kernel registry under the plain
arithmetic semiring), inflation (elementwise power + column
renormalization), and pruning (per-column threshold / top-k sparsification
with the discarded probability mass accounted per iteration).

Storage is the CSR of the *transpose*: stored row ``c`` holds column ``c``
of ``M``, so every per-column operation is a contiguous row operation and
expansion is simply ``Mᵀ·Mᵀ = (M·M)ᵀ`` on the stored matrix — one
:class:`~repro.sparse.csr.CsrMatrix` and the unchanged kernel registry, no
CSC variant needed.

Everything here is deterministic (stable sorts, index-ordered tie-breaks)
and, because expansion goes through the registry whose backends are
bit-identical under the arithmetic semiring, a whole MCL run is bit-identical
across ``expand``/``gustavson``/``auto``/``scipy``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.kernels import kernel_supports_batch_flops, resolve_kernel
from ..sparse.semiring import ArithmeticSemiring
from ..sparse.spgemm import SpGemmStats

#: Edge-attribute transforms available for turning similarity scores into
#: random-walk weights.
WEIGHT_TRANSFORMS = ("ani", "score", "log_score", "unit")


def similarity_weights(edges: np.ndarray, transform: str = "ani") -> np.ndarray:
    """Edge weights for the random walk, from the similarity-graph attributes.

    ``"ani"`` uses average identity (the paper's similarity measure, already
    in [0, 1]); ``"score"`` the raw alignment score; ``"log_score"``
    ``log1p(score)``, compressing the long score tail so one strong edge
    cannot dominate a column; ``"unit"`` ignores attributes (pure topology).
    """
    if transform == "ani":
        return np.asarray(edges["ani"], dtype=np.float64)
    if transform == "score":
        return np.asarray(edges["score"], dtype=np.float64)
    if transform == "log_score":
        return np.log1p(np.maximum(np.asarray(edges["score"], dtype=np.float64), 0.0))
    if transform == "unit":
        return np.ones(edges.size, dtype=np.float64)
    raise ValueError(
        f"unknown weight transform {transform!r}; available: {', '.join(WEIGHT_TRANSFORMS)}"
    )


@dataclass
class PruneStats:
    """Probability mass and entries discarded by one pruning pass.

    ``pruned_mass`` sums the dropped (pre-renormalization) probabilities
    across all columns; ``pruned_mass_max`` is the worst single column —
    the quantity to watch when deciding whether a threshold/top-k setting
    is distorting the walk rather than merely sparsifying it.
    """

    pruned_entries: int = 0
    pruned_mass: float = 0.0
    pruned_mass_max: float = 0.0

    def merge(self, other: "PruneStats") -> "PruneStats":
        """Combine stats from disjoint column ranges (e.g. grid-row stripes)."""
        return PruneStats(
            pruned_entries=self.pruned_entries + other.pruned_entries,
            pruned_mass=self.pruned_mass + other.pruned_mass,
            pruned_mass_max=max(self.pruned_mass_max, other.pruned_mass_max),
        )


# ---------------------------------------------------------------------------
# Per-column operators on a transpose-CSR.
#
# Each stored CSR row is one logical column of the column-stochastic matrix,
# so every operator below is a contiguous row operation.  None of them needs
# the matrix to be square — they work on any *stripe* of stored rows, and
# because each column lives entirely inside one stored row, running them on
# the grid-row stripes of :class:`repro.graph.dist.DistStochasticMatrix` and
# concatenating is bit-identical to running them on the whole matrix.  That
# shared-code property is what the distributed MCL's bit-identity guarantee
# rests on; :class:`StochasticMatrix` delegates to these same functions.
# ---------------------------------------------------------------------------
def stored_row_ids(tcsr: CsrMatrix) -> np.ndarray:
    """Stored-row (= logical-column) id of every nonzero."""
    return np.repeat(
        np.arange(tcsr.shape[0], dtype=np.int64), np.diff(tcsr.indptr)
    )


def column_sums_tcsr(tcsr: CsrMatrix) -> np.ndarray:
    """Per-stored-row (= per-column) probability mass."""
    return np.bincount(
        stored_row_ids(tcsr), weights=tcsr.values, minlength=tcsr.shape[0]
    )


def normalize_tcsr(tcsr: CsrMatrix) -> CsrMatrix:
    """Rescale every stored row to sum to 1 (empty rows stay empty)."""
    sums = column_sums_tcsr(tcsr)
    scale = np.where(sums > 0, sums, 1.0)
    values = tcsr.values / scale[stored_row_ids(tcsr)]
    return CsrMatrix(tcsr.shape, tcsr.indptr, tcsr.indices, values)


def inflate_tcsr(tcsr: CsrMatrix, power: float) -> CsrMatrix:
    """Elementwise power followed by per-stored-row renormalization."""
    if power <= 0:
        raise ValueError("inflation power must be positive")
    raised = CsrMatrix(tcsr.shape, tcsr.indptr, tcsr.indices, np.power(tcsr.values, power))
    return normalize_tcsr(raised)


def prune_keep_mask(
    tcsr: CsrMatrix, threshold: float = 0.0, top_k: int | None = None
) -> tuple[np.ndarray, PruneStats]:
    """Per-stored-row pruning decisions (no rebuild, no renormalization).

    Returns the boolean keep mask over the stored entries plus the
    :class:`PruneStats` of what the mask discards.  Ranking within a stored
    row is by descending value with ascending column index as the
    deterministic tie-break; each row's largest entry always survives.  The
    decisions for one stored row depend only on that row's entries, so masks
    computed on disjoint stripes agree bit-for-bit with the whole-matrix
    mask — the caller (serial or distributed) decides globally whether
    anything was dropped and renormalizes accordingly.
    """
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be >= 1")
    values = tcsr.values
    nnz = values.size
    if nnz == 0:
        return np.ones(0, dtype=bool), PruneStats()
    col_ids = stored_row_ids(tcsr)
    # rank entries within each stored row: descending value, ascending index
    order = np.lexsort((tcsr.indices, -values, col_ids))
    sorted_cols = col_ids[order]
    starts = np.flatnonzero(
        np.concatenate([[True], np.diff(sorted_cols) != 0])
    )
    counts = np.diff(np.concatenate([starts, [nnz]]))
    rank = np.empty(nnz, dtype=np.int64)
    rank[order] = np.arange(nnz) - np.repeat(starts, counts)
    keep = (values >= threshold) | (rank == 0)
    if top_k is not None:
        keep &= rank < top_k
    dropped = ~keep
    if not np.any(dropped):
        return keep, PruneStats()
    dropped_mass = np.bincount(
        col_ids[dropped], weights=values[dropped], minlength=tcsr.shape[0]
    )
    stats = PruneStats(
        pruned_entries=int(dropped.sum()),
        pruned_mass=float(dropped_mass.sum()),
        pruned_mass_max=float(dropped_mass.max()),
    )
    return keep, stats


def apply_keep_mask(tcsr: CsrMatrix, keep: np.ndarray) -> CsrMatrix:
    """Rebuild a transpose-CSR retaining only the masked entries."""
    col_ids = stored_row_ids(tcsr)
    indptr = np.zeros(tcsr.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(col_ids[keep], minlength=tcsr.shape[0]), out=indptr[1:])
    return CsrMatrix(tcsr.shape, indptr, tcsr.indices[keep], tcsr.values[keep])


def chaos_tcsr(tcsr: CsrMatrix) -> float:
    """Max over stored rows of ``max − Σ v²`` (0.0 for an empty stripe).

    The global chaos is the exact maximum of the per-stripe values, so the
    distributed driver combines stripes with a plain ``max``.
    """
    if tcsr.nnz == 0:
        return 0.0
    col_ids = stored_row_ids(tcsr)
    values = tcsr.values
    sq_sums = np.bincount(col_ids, weights=values * values, minlength=tcsr.shape[0])
    maxes = np.zeros(tcsr.shape[0], dtype=np.float64)
    np.maximum.at(maxes, col_ids, values)
    return float(np.max(maxes - sq_sums))


def flow_residual_tcsr(prev: CsrMatrix, curr: CsrMatrix) -> float:
    """Max over stored rows (= columns) of the L1 distance between iterates.

    The flow-balance residual of regularized MCL: R-MCL iterates converge
    toward *balanced flow* rather than strict idempotency, so the chaos
    measure (which detects idempotent attractor columns) rarely fires; the
    per-column L1 change between consecutive iterates does go to zero.
    Missing entries count with value 0, so structural churn (an entry pruned
    in one iterate but present in the other) is part of the residual.

    The measure is per stored row, so evaluating it stripe by stripe on the
    distributed iterate and combining with ``max`` is bit-identical to
    evaluating it on the whole matrix (the property every operator in this
    module maintains).
    """
    if prev.shape != curr.shape:
        raise ValueError(f"iterate shapes differ: {prev.shape} vs {curr.shape}")
    rows = np.concatenate([stored_row_ids(curr), stored_row_ids(prev)])
    if rows.size == 0:
        return 0.0
    cols = np.concatenate([curr.indices, prev.indices])
    vals = np.concatenate([curr.values, -prev.values])
    order = np.lexsort((cols, rows))  # stable: curr entries stay before prev
    rows, cols, vals = rows[order], cols[order], vals[order]
    boundary = np.empty(rows.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
    group_start = np.flatnonzero(boundary)
    deltas = np.add.reduceat(vals, group_start)
    per_row = np.zeros(prev.shape[0], dtype=np.float64)
    np.add.at(per_row, rows[group_start], np.abs(deltas))
    return float(per_row.max()) if per_row.size else 0.0


class StochasticMatrix:
    """A column-stochastic sparse matrix stored as the CSR of its transpose.

    Construct via :meth:`from_similarity_graph` (which adds self loops and
    normalizes) or wrap an existing transpose-CSR directly.  All operators
    return new matrices; instances are treated as immutable.
    """

    def __init__(self, tcsr: CsrMatrix) -> None:
        if tcsr.shape[0] != tcsr.shape[1]:
            raise ValueError("stochastic matrices are square")
        if tcsr.values.dtype != np.float64:
            tcsr = CsrMatrix(
                tcsr.shape, tcsr.indptr, tcsr.indices, tcsr.values.astype(np.float64)
            )
        self.tcsr = tcsr

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_similarity_graph(
        cls,
        graph,
        transform: str = "ani",
        self_loop_weight: float = 1.0,
    ) -> "StochasticMatrix":
        """Build the MCL transition matrix from a similarity graph.

        Every undirected edge contributes both directions; every vertex gets
        a self loop of ``self_loop_weight`` (MCL's standard fix for the
        period-2 oscillation of bipartite-ish walks — and what keeps
        isolated vertices valid columns); columns are then normalized.
        ``graph`` is duck-typed: ``n_vertices`` plus an ``edges`` record
        array with ``row``/``col`` and the attribute fields.
        """
        if self_loop_weight < 0:
            raise ValueError("self_loop_weight must be non-negative")
        n = int(graph.n_vertices)
        edges = graph.edges
        weights = similarity_weights(edges, transform)
        rows = np.concatenate(
            [np.asarray(edges["row"], dtype=np.int64),
             np.asarray(edges["col"], dtype=np.int64),
             np.arange(n, dtype=np.int64)]
        )
        cols = np.concatenate(
            [np.asarray(edges["col"], dtype=np.int64),
             np.asarray(edges["row"], dtype=np.int64),
             np.arange(n, dtype=np.int64)]
        )
        values = np.concatenate(
            [weights, weights, np.full(n, float(self_loop_weight))]
        )
        keep = values > 0
        rows, cols, values = rows[keep], cols[keep], values[keep]
        # the initial matrix is symmetric, so the transpose storage can be
        # built from the same triplets; CSR rows are the matrix's columns
        order = np.lexsort((rows, cols))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(cols, minlength=n), out=indptr[1:])
        tcsr = CsrMatrix((n, n), indptr, rows[order], values[order])
        return cls(tcsr).normalize()

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape (n x n)."""
        return self.tcsr.shape

    @property
    def n(self) -> int:
        """Number of vertices / columns."""
        return self.tcsr.shape[0]

    @property
    def nnz(self) -> int:
        """Number of stored transition probabilities."""
        return self.tcsr.nnz

    def memory_bytes(self) -> int:
        """Footprint of the transpose-CSR storage."""
        return self.tcsr.memory_bytes()

    def _column_ids(self) -> np.ndarray:
        """Stored-row (= matrix-column) id of every nonzero."""
        return stored_row_ids(self.tcsr)

    def column_sums(self) -> np.ndarray:
        """Per-column probability mass (1.0 for a normalized column)."""
        return column_sums_tcsr(self.tcsr)

    def same_bits(self, other: "StochasticMatrix") -> bool:
        """Exact structural and bitwise value equality (for determinism tests)."""
        return (
            self.shape == other.shape
            and np.array_equal(self.tcsr.indptr, other.tcsr.indptr)
            and np.array_equal(self.tcsr.indices, other.tcsr.indices)
            and np.array_equal(self.tcsr.values, other.tcsr.values)
        )

    # ------------------------------------------------------------------ MCL operators
    def normalize(self) -> "StochasticMatrix":
        """Rescale every column to sum to 1 (empty columns stay empty)."""
        return StochasticMatrix(normalize_tcsr(self.tcsr))

    def expand(
        self,
        kernel=None,
        batch_flops: int | None = None,
        right: "StochasticMatrix | None" = None,
    ) -> tuple["StochasticMatrix", SpGemmStats]:
        """MCL expansion ``M·M`` through the SpGEMM kernel registry.

        In transpose storage ``(M·M)ᵀ = Mᵀ·Mᵀ``, so the stored matrix is
        multiplied by itself under the plain arithmetic semiring.  The
        product of column-stochastic matrices is column-stochastic up to
        float rounding; the following inflation renormalizes, so no extra
        normalization pass is spent here.

        ``right`` substitutes the logical *left* factor: ``expand(right=G)``
        computes ``G·M``, which in transpose storage is ``Mᵀ·Gᵀ`` — the
        stored ``right`` becomes the second operand.  Regularized MCL passes
        the original transition matrix here so flow is always routed through
        the actual graph edges rather than the current (pruned) iterate.
        """
        spgemm_kernel = resolve_kernel(kernel)
        kwargs = {}
        if batch_flops is not None:
            if not kernel_supports_batch_flops(spgemm_kernel):
                raise ValueError(
                    f"SpGEMM backend {kernel!r} does not support batch_flops; "
                    "use 'gustavson' or 'auto' for flop-budgeted expansion"
                )
            kwargs["batch_flops"] = batch_flops
        t_coo = self.tcsr.to_coo()
        rt_coo = t_coo if right is None else right.tcsr.to_coo()
        product, stats = spgemm_kernel(
            t_coo, rt_coo, ArithmeticSemiring(), return_stats=True, **kwargs
        )
        return StochasticMatrix(CsrMatrix.from_coo(product)), stats

    def inflate(self, power: float) -> "StochasticMatrix":
        """MCL inflation: elementwise power, then column renormalization."""
        return StochasticMatrix(inflate_tcsr(self.tcsr, power))

    def prune(
        self, threshold: float = 0.0, top_k: int | None = None
    ) -> tuple["StochasticMatrix", PruneStats]:
        """Per-column sparsification bounding memory across iterations.

        Drops entries below ``threshold`` and, when ``top_k`` is given,
        keeps only each column's ``top_k`` largest entries (ties broken by
        ascending row index, so the result is deterministic).  Each
        column's largest entry always survives.  The discarded probability
        mass is returned in :class:`PruneStats`; surviving columns are
        renormalized so the matrix stays stochastic.
        """
        keep, stats = prune_keep_mask(self.tcsr, threshold, top_k)
        if stats.pruned_entries == 0:
            return self, PruneStats()
        pruned = StochasticMatrix(apply_keep_mask(self.tcsr, keep))
        return pruned.normalize(), stats

    # ------------------------------------------------------------------ convergence / clusters
    def chaos(self) -> float:
        """MCL's convergence measure: ``max over columns of (max - Σ v²)``.

        Zero exactly when every column is a unit vector (the walk has
        committed every sequence to one attractor); large while columns are
        still spread over many candidates.
        """
        return chaos_tcsr(self.tcsr)

    def attachment_pairs(self, tol: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """(column, attractor-row) pairs with probability above ``tol``.

        In a converged MCL matrix ``M[j, c] > 0`` reads "column ``c`` is
        attracted to ``j``"; the pairs are the bipartite attachment graph
        whose connected components are the clusters.
        """
        mask = self.tcsr.values > tol
        return self._column_ids()[mask], self.tcsr.indices[mask]
