"""Sparse Markov clustering (MCL) on the SpGEMM kernel registry.

Connected components cannot separate protein families joined by a single
spurious edge — one borderline alignment merges two families for good.
Markov clustering (van Dongen's MCL) fixes that by simulating flow: random
walks started inside a family keep circulating inside it, walks across a
thin bridge are starved out.  The algorithm alternates

* **expansion** — ``M ← M·M``, an SpGEMM under the plain arithmetic
  semiring, dispatched through :mod:`repro.sparse.kernels` (any registered
  backend; the ``"scipy"`` wrapper is the fast path where available);
* **inflation** — elementwise power ``Γ_r`` + column renormalization,
  sharpening strong transitions and starving weak ones;
* **pruning** — per-column threshold / top-k sparsification, which is what
  keeps the iterates *sparse* (unpruned expansion densifies toward the
  component-wide stationary walk); the discarded probability mass is
  accounted per iteration so over-aggressive pruning is visible, not silent.

The run is deterministic and — because every backend is bit-identical under
the arithmetic semiring — produces bit-identical iterates whichever SpGEMM
backend executes the expansion (asserted in ``tests/test_graph.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..metrics.memory import MemoryTracker
from ..sparse.kernels import DEFAULT_KERNEL, resolve_kernel
from ..trace import current_tracer
from .components import canonical_labels, component_roots
from .matrix import StochasticMatrix, flow_residual_tcsr

#: Memory-tracker component for the live MCL iterate.
MCL_ITERATE = "mcl_iterate"
#: Memory-tracker component for the expansion's intermediate partial products.
MCL_INTERMEDIATE = "mcl_intermediate"


@dataclass(frozen=True)
class MclIterationStats:
    """Instrumentation of one expansion-inflation-pruning round."""

    iteration: int
    backend: str
    nnz: int
    flops: int
    compression_factor: float
    intermediate_bytes: int
    pruned_entries: int
    pruned_mass: float
    pruned_mass_max: float
    chaos: float
    expand_seconds: float
    #: flow-balance residual (max per-column L1 change vs. the previous
    #: iterate); None when the run does not track it (rmcl_tolerance == 0)
    flow_residual: float | None = None

    def as_dict(self) -> dict[str, float]:
        """Flat JSON-serializable view (for reports and benchmarks)."""
        return {
            "iteration": self.iteration,
            "backend": self.backend,
            "nnz": self.nnz,
            "flops": self.flops,
            "compression_factor": self.compression_factor,
            "intermediate_bytes": self.intermediate_bytes,
            "pruned_entries": self.pruned_entries,
            "pruned_mass": self.pruned_mass,
            "pruned_mass_max": self.pruned_mass_max,
            "chaos": self.chaos,
            "expand_seconds": self.expand_seconds,
            "flow_residual": self.flow_residual,
        }


@dataclass
class MclResult:
    """Everything one Markov-clustering run produces."""

    labels: np.ndarray
    n_clusters: int
    converged: bool
    n_iterations: int
    iterations: list[MclIterationStats] = field(default_factory=list)
    final_matrix: StochasticMatrix | None = None
    memory: MemoryTracker = field(default_factory=MemoryTracker)

    @property
    def total_flops(self) -> int:
        """Expansion flops summed over all iterations."""
        return sum(it.flops for it in self.iterations)

    @property
    def total_pruned_mass(self) -> float:
        """Probability mass discarded by pruning, summed over iterations."""
        return sum(it.pruned_mass for it in self.iterations)

    @property
    def peak_intermediate_bytes(self) -> int:
        """Peak expansion intermediate across iterations."""
        return max((it.intermediate_bytes for it in self.iterations), default=0)


class MarkovClustering:
    """Iterative MCL driver with convergence detection and per-iteration stats.

    Parameters
    ----------
    inflation:
        Inflation power ``r > 1``; higher values cut the graph into finer
        clusters (MCL's granularity knob; 2.0 is the classic default).
    max_iterations:
        Upper bound on expansion rounds; the run reports
        ``converged=False`` when it is reached first.
    prune_threshold:
        Per-column probability below which entries are discarded each
        iteration (each column's maximum always survives).
    top_k:
        Optional hard cap on stored entries per column — the memory bound
        for large graphs.  ``None`` disables the cap.
    tolerance:
        Convergence threshold on the chaos measure
        (:meth:`StochasticMatrix.chaos`); 0 demands exact idempotency.
    spgemm_backend:
        Registry name (or callable) executing the expansion; ``None`` uses
        the registry default.  Results are bit-identical for every backend.
    batch_flops:
        Optional flop budget forwarded to batching backends (bounds the
        expansion's intermediate memory).
    regularized:
        Regularized MCL (R-MCL): expansion multiplies by the *original*
        transition matrix (``M ← M_G·M``) instead of squaring the iterate,
        so flow is always routed through real graph edges.  A cheap
        sensitivity option: one product per iteration against a fixed,
        sparse right-hand side, and less prone to the classic MCL habit of
        hollowing out large clusters into many singleton attractors.
    rmcl_tolerance:
        Flow-balance residual threshold: stop when the max per-column L1
        change between consecutive iterates
        (:func:`~repro.graph.matrix.flow_residual_tcsr`) drops to this
        value or below.  R-MCL iterates balance flow rather than reaching
        strict idempotency, so the chaos tolerance rarely fires for
        ``regularized=True`` runs; this criterion is what lets them stop
        before ``max_iterations``.  ``0`` (the default) disables the
        criterion (and its per-iteration residual computation).
    """

    def __init__(
        self,
        inflation: float = 2.0,
        max_iterations: int = 60,
        prune_threshold: float = 1e-4,
        top_k: int | None = None,
        tolerance: float = 1e-9,
        spgemm_backend=None,
        batch_flops: int | None = None,
        regularized: bool = False,
        rmcl_tolerance: float = 0.0,
    ) -> None:
        if inflation <= 1.0:
            raise ValueError("inflation must be > 1 (1.0 would never sharpen the walk)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= prune_threshold < 1.0:
            raise ValueError("prune_threshold must be in [0, 1)")
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1 (or None)")
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if rmcl_tolerance < 0.0:
            raise ValueError("rmcl_tolerance must be non-negative (0 disables)")
        self.inflation = float(inflation)
        self.max_iterations = int(max_iterations)
        self.prune_threshold = float(prune_threshold)
        self.top_k = top_k
        self.tolerance = float(tolerance)
        self.rmcl_tolerance = float(rmcl_tolerance)
        self.spgemm_backend = spgemm_backend
        self.batch_flops = batch_flops
        self.regularized = bool(regularized)
        resolve_kernel(spgemm_backend)  # fail fast on unknown names

    # ------------------------------------------------------------------ public API
    def fit(self, matrix: StochasticMatrix) -> MclResult:
        """Run MCL to convergence (or ``max_iterations``) on ``matrix``."""
        backend_name = (
            self.spgemm_backend
            if isinstance(self.spgemm_backend, str)
            else (DEFAULT_KERNEL if self.spgemm_backend is None
                  else getattr(self.spgemm_backend, "__name__", "custom"))
        )
        memory = MemoryTracker()
        current = matrix
        memory.set_usage(MCL_ITERATE, current.memory_bytes())
        iterations: list[MclIterationStats] = []
        converged = False
        # fit has no StageContext; the tracer (if any) is the run's active one
        tracer = current_tracer()
        for iteration in range(1, self.max_iterations + 1):
            iter_t0 = time.perf_counter() if tracer is not None else 0.0
            previous_tcsr = current.tcsr if self.rmcl_tolerance > 0 else None
            t0 = time.perf_counter()
            expanded, spgemm_stats = current.expand(
                kernel=self.spgemm_backend,
                batch_flops=self.batch_flops,
                right=matrix if self.regularized else None,
            )
            expand_seconds = time.perf_counter() - t0
            inflated = expanded.inflate(self.inflation)
            current, prune_stats = inflated.prune(self.prune_threshold, self.top_k)
            chaos = current.chaos()
            residual = (
                flow_residual_tcsr(previous_tcsr, current.tcsr)
                if previous_tcsr is not None
                else None
            )
            memory.set_usage(MCL_ITERATE, current.memory_bytes())
            memory.set_usage(MCL_INTERMEDIATE, spgemm_stats.intermediate_bytes)
            iterations.append(
                MclIterationStats(
                    iteration=iteration,
                    backend=backend_name,
                    nnz=current.nnz,
                    flops=spgemm_stats.flops,
                    compression_factor=spgemm_stats.compression_factor,
                    intermediate_bytes=spgemm_stats.intermediate_bytes,
                    pruned_entries=prune_stats.pruned_entries,
                    pruned_mass=prune_stats.pruned_mass,
                    pruned_mass_max=prune_stats.pruned_mass_max,
                    chaos=chaos,
                    expand_seconds=expand_seconds,
                    flow_residual=residual,
                )
            )
            if tracer is not None:
                tracer.add_span(
                    "mcl_iteration", "cluster", iter_t0, time.perf_counter(),
                    lane="cluster", iteration=iteration, nnz=current.nnz,
                    chaos=float(chaos),
                )
            if chaos <= self.tolerance or (
                residual is not None and residual <= self.rmcl_tolerance
            ):
                converged = True
                break
        labels = interpret_clusters(current)
        return MclResult(
            labels=labels,
            n_clusters=int(labels.max()) + 1 if labels.size else 0,
            converged=converged,
            n_iterations=len(iterations),
            iterations=iterations,
            final_matrix=current,
            memory=memory,
        )

    def fit_graph(
        self, graph, transform: str = "ani", self_loop_weight: float = 1.0
    ) -> MclResult:
        """Convenience: build the transition matrix from a graph, then fit."""
        return self.fit(
            StochasticMatrix.from_similarity_graph(
                graph, transform=transform, self_loop_weight=self_loop_weight
            )
        )


def interpret_clusters(matrix: StochasticMatrix, tol: float = 0.0) -> np.ndarray:
    """Read the clustering out of a (converged) MCL matrix.

    Vertices are joined with the attractors their column flows to
    (``M[j, c] > tol``), and the connected components of that attachment
    graph — via the vectorized sweep in :mod:`repro.graph.components` —
    are the clusters.  Handles overlapping attractor systems (a column
    split across two attractors joins them into one cluster) and, applied
    to a non-converged iterate, yields the best-so-far partition.
    """
    cols, rows = matrix.attachment_pairs(tol)
    return canonical_labels(component_roots(matrix.n, cols, rows))
