"""Distributed Markov clustering on the 2D process grid.

PR 3 made the similarity graph's family detection a sparse-compute pipeline,
but a *single-rank* one: the search stage scales over the simulated grid
while MCL runs on one node.  This module closes that gap.  The transition
matrix is blocked over the same ``sqrt(p) x sqrt(p)``
:class:`~repro.mpi.process_grid.ProcessGrid` the search uses, expansion runs
block by block through the deferred-merge 2D Sparse SUMMA
(:func:`repro.distsparse.summa.summa`, the same engine
:class:`~repro.distsparse.blocked_summa.BlockedSpGemm` drives for the
search) under the plain arithmetic semiring, and inflation/pruning are
grid-local row operations with the cross-rank reductions (column
renormalization, prune ranking, chaos) modeled as collectives.  Every MCL
iteration is expressed as ``BlockTask``-style stages over stored-row blocks
of the iterate (``blocks_per_grid_row`` sub-blocks nested in each grid row,
the cluster analogue of the search's ``num_blocks``) —

``expand(b)``
    Deferred-merge blocked SUMMA for stored-row block ``b`` of ``Mᵀ·Mᵀ``
    (broadcasts charged to the ``cluster_comm`` ledger category and the
    ``cluster_bytes_*`` counters).
``inflate(b)`` / ``prune(b)``
    Elementwise power and per-column prune decisions on the stripe — local
    to grid row ``b``'s ranks once the ranking allgather has run; the
    column-renormalization sums are a modeled allreduce along the grid row.
``renormalize``
    Iteration epilogue: one global "did anything drop" flag, the
    post-prune renormalization, and the chaos reduction.

— so the same overlap algebra the search engine executes (the shared
depth-``k`` :class:`repro.mpi.costmodel.OverlapWindow`, of which the classic
``charge_overlap_slot`` is the depth-1 special case) co-schedules
``expand(b+1..b+k)`` with ``prune(b)`` on the simulated clock
(``overlap_depth`` selects ``k``), ledgering the hidden seconds under
``cluster_overlap_hidden`` so that ``cluster_expand + cluster_prune −
cluster_overlap_hidden == combined clock`` per rank for every depth.

**Bit-identity.**  The distributed run produces the same labels and the same
final matrix, bit for bit, as single-rank
:class:`~repro.graph.mcl.MarkovClustering` for every grid size and every
registered SpGEMM backend.  Two properties make that possible:

* expansion uses the *deferred-merge* SUMMA
  (:func:`repro.distsparse.summa.summa` with ``deferred_merge=True``): each
  rank multiplies its gathered stripes once, so every output element's
  partial products are reduced in one left-to-right pass over ascending
  global inner index — exactly the association
  :class:`~repro.sparse.semiring.ArithmeticSemiring.reduce` gives a serial
  kernel (per-stage merging would re-associate the sums and drift in the
  last ulp);
* inflation, pruning and renormalization run the *same code* as the serial
  operators (the stripe functions of :mod:`repro.graph.matrix`), and every
  one of them is per-stored-row, so stripe-wise evaluation concatenates to
  the serial result exactly.  The only globally-coupled decision — serial
  ``prune`` renormalizes all columns iff *any* entry dropped anywhere — is
  reproduced with the iteration-epilogue flag reduction.

This mirrors the paper's framing: the clustering stage becomes one more
distributed sparse-matrix workload on the very substrate (grid, SUMMA,
cost ledger) that makes the search scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..distsparse.blocked_summa import _chunk_bounds
from ..distsparse.distmat import DistSparseMatrix
from ..distsparse.summa import summa
from ..metrics.memory import MemoryTracker
from ..mpi.collectives import CollectiveEngine
from ..mpi.communicator import SimCommunicator
from ..mpi.costmodel import OverlapWindow
from ..mpi.process_grid import is_perfect_square
from ..sparse.coo import CooMatrix
from ..sparse.csr import CsrMatrix
from ..sparse.kernels import DEFAULT_KERNEL, resolve_kernel
from ..sparse.semiring import ArithmeticSemiring
from ..sparse.spgemm import SpGemmStats
from .matrix import (
    PruneStats,
    StochasticMatrix,
    apply_keep_mask,
    chaos_tcsr,
    column_sums_tcsr,
    flow_residual_tcsr,
    inflate_tcsr,
    normalize_tcsr,
    prune_keep_mask,
    stored_row_ids,
)
from .mcl import interpret_clusters

#: Ledger time category of the expansion broadcasts and row-op collectives.
CLUSTER_COMM_CATEGORY = "cluster_comm"
#: Ledger time category of the modeled per-rank expansion compute.
CLUSTER_EXPAND_CATEGORY = "cluster_expand"
#: Ledger time category of the modeled per-rank row-op compute
#: (inflation, prune decisions, renormalization, chaos).
CLUSTER_PRUNE_CATEGORY = "cluster_prune"
#: Informational category holding the seconds hidden by the
#: expand(b+1)/prune(b) overlap; excluded from totals, and what makes
#: ``cluster_expand + cluster_prune − cluster_overlap_hidden == clock``.
CLUSTER_OVERLAP_HIDDEN_CATEGORY = "cluster_overlap_hidden"
#: Category absorbing the *measured* (wall-clock) seconds of the local SUMMA
#: multiplies, kept out of the modeled identity exactly like the search
#: pipeline's ``spgemm_measured``.
CLUSTER_EXPAND_MEASURED_CATEGORY = "cluster_expand_measured"
#: Prefix namespacing the cluster stage's byte counters on a shared ledger.
CLUSTER_COUNTER_PREFIX = "cluster_"

#: Bytes per stored entry moved by the row-op collectives (int64 column
#: index + float64 value).
ROW_OP_ENTRY_BYTES = 16
#: Memory-tracker component names.
DIST_MCL_ITERATE = "dist_mcl_iterate"
DIST_MCL_INTERMEDIATE = "dist_mcl_intermediate"


def expansion_broadcast_bytes(
    grid_dim: int, a_bytes: int, b_bytes: int, n_blocks: int | None = None
) -> int:
    """Closed-form broadcast volume of one blocked deferred-merge expansion.

    The expansion computes ``n_blocks`` stored-row blocks of ``A·B`` one at
    a time (``blocks_per_grid_row`` sub-blocks nested in each grid row;
    default ``n_blocks = grid_dim``).  Each block's SUMMA broadcasts its row
    stripe of ``A`` once and the *whole* of ``B`` (column stripe of every
    block column) — the blocked-SUMMA trade-off of §VI-A with
    ``br = n_blocks, bc = 1``.  Each binomial-tree broadcast of an
    ``s``-byte block to its ``grid_dim``-rank group moves
    ``s · (grid_dim − 1)`` bytes (root-sent == non-root-received), and the
    row stripes of ``A`` tile ``A`` exactly, so one expansion moves::

        (grid_dim − 1) · (bytes(A) + n_blocks · bytes(B))

    in each direction.  ``a_bytes``/``b_bytes`` are the COO triplet
    footprints of the operands (24 bytes per stored entry).  The charged
    ``cluster_bytes_sent``/``cluster_bytes_received`` counters match this
    expression to the bit (asserted in ``tests/test_graph_dist.py``).
    """
    if n_blocks is None:
        n_blocks = grid_dim
    return (grid_dim - 1) * (int(a_bytes) + int(n_blocks) * int(b_bytes))


class _VolumePredictor:
    """Closed-form accumulator mirroring the CollectiveEngine byte counters."""

    def __init__(self) -> None:
        self.sent = 0
        self.received = 0

    def bcast(self, nbytes: int, participants: int) -> None:
        moved = int(nbytes) * max(participants - 1, 0)
        self.sent += moved
        self.received += moved

    def allgather(self, sizes: list[int]) -> None:
        total = int(sum(sizes))
        p = len(sizes)
        self.sent += sum(int(s) * max(p - 1, 0) for s in sizes)
        self.received += total * p - total

    def allreduce(self, nbytes: int, participants: int) -> None:
        # reduce-then-broadcast: only the broadcast leg counts bytes
        self.bcast(nbytes, participants)


class DistStochasticMatrix:
    """A column-stochastic transition matrix blocked over the 2D process grid.

    Storage follows the transpose-CSR convention of
    :class:`~repro.graph.matrix.StochasticMatrix`: stored row ``c`` is
    logical column ``c``.  Stored rows are split into ``grid_dim`` balanced
    stripes (grid row ``r`` owns stripe ``r``); within a grid row, the
    stored *columns* split by grid column, giving every rank the 2D block of
    CombBLAS's decomposition.  The stripes are the unit the per-column
    operators run on; :meth:`to_dist_sparse` materializes the per-rank COO
    blocks the SUMMA expansion consumes, and per-rank nnz accounting is
    derived from the same column splits.
    """

    def __init__(self, comm: SimCommunicator, stripes: list[CsrMatrix], n: int) -> None:
        grid = comm.require_grid()
        if len(stripes) != grid.grid_dim:
            raise ValueError("need exactly one stored-row stripe per grid row")
        for r, stripe in enumerate(stripes):
            lo, hi = grid.block_bounds(n, r)
            if stripe.shape != (hi - lo, n):
                raise ValueError(
                    f"stripe {r} has shape {stripe.shape}, expected {(hi - lo, n)}"
                )
        self.comm = comm
        self.grid = grid
        self.n = int(n)
        self.stripes = stripes

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_matrix(cls, matrix: StochasticMatrix, comm: SimCommunicator) -> "DistStochasticMatrix":
        """Block a single-rank transition matrix over the communicator's grid."""
        grid = comm.require_grid()
        n = matrix.n
        if grid.grid_dim > n:
            raise ValueError(
                f"grid dimension {grid.grid_dim} exceeds the matrix order {n}; "
                "every grid row needs at least one stored row"
            )
        stripes = [
            matrix.tcsr.row_slice(*grid.block_bounds(n, r)) for r in range(grid.grid_dim)
        ]
        return cls(comm, stripes, n)

    @classmethod
    def from_similarity_graph(
        cls,
        graph,
        comm: SimCommunicator,
        transform: str = "ani",
        self_loop_weight: float = 1.0,
    ) -> "DistStochasticMatrix":
        """Build and distribute the MCL transition matrix of a similarity graph."""
        return cls.from_matrix(
            StochasticMatrix.from_similarity_graph(
                graph, transform=transform, self_loop_weight=self_loop_weight
            ),
            comm,
        )

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> tuple[int, int]:
        """Global matrix shape (n x n)."""
        return (self.n, self.n)

    @property
    def nnz(self) -> int:
        """Global number of stored transition probabilities."""
        return sum(stripe.nnz for stripe in self.stripes)

    def triplet_bytes(self) -> int:
        """COO triplet footprint of the whole matrix (what SUMMA broadcasts)."""
        return self.nnz * 24

    def _col_block_of(self, indices: np.ndarray) -> np.ndarray:
        """Grid column owning each stored column index."""
        return _column_owner(indices, self.grid, self.n)

    def nnz_per_rank(self) -> np.ndarray:
        """Stored entries per rank under the 2D decomposition."""
        out = np.zeros(self.grid.nprocs, dtype=np.int64)
        for r, stripe in enumerate(self.stripes):
            counts = np.bincount(
                self._col_block_of(stripe.indices), minlength=self.grid.grid_dim
            )
            for c in range(self.grid.grid_dim):
                out[self.grid.rank_of(r, c)] = counts[c]
        return out

    def memory_bytes(self) -> int:
        """Footprint of the stripe storage."""
        return sum(stripe.memory_bytes() for stripe in self.stripes)

    def to_matrix(self) -> StochasticMatrix:
        """Gather the stripes into a single-rank :class:`StochasticMatrix`."""
        return StochasticMatrix(_vstack_tcsr(self.stripes, self.n))

    def to_dist_sparse(self) -> DistSparseMatrix:
        """Materialize the per-rank COO blocks for the SUMMA expansion."""
        blocks: list[CooMatrix] = [None] * self.grid.nprocs  # type: ignore[list-item]
        for r, stripe in enumerate(self.stripes):
            rows = stored_row_ids(stripe)
            owner = self._col_block_of(stripe.indices)
            for c in range(self.grid.grid_dim):
                clo, chi = self.grid.block_bounds(self.n, c)
                mask = owner == c
                blocks[self.grid.rank_of(r, c)] = CooMatrix(
                    (stripe.shape[0], chi - clo),
                    rows[mask],
                    stripe.indices[mask] - clo,
                    stripe.values[mask],
                    check=False,
                )
        return DistSparseMatrix(self.shape, self.comm, blocks)

    def same_bits(self, other: "DistStochasticMatrix") -> bool:
        """Exact structural and bitwise equality of the stripes."""
        return self.n == other.n and all(
            a.shape == b.shape
            and np.array_equal(a.indptr, b.indptr)
            and np.array_equal(a.indices, b.indices)
            and np.array_equal(a.values, b.values)
            for a, b in zip(self.stripes, other.stripes)
        )


@dataclass(frozen=True)
class DistMclIterationStats:
    """Instrumentation of one distributed expansion-inflation-pruning round."""

    iteration: int
    backend: str
    nnz: int
    flops: int
    flops_per_rank: tuple[float, ...]
    compression_factor: float
    intermediate_bytes: int
    pruned_entries: int
    pruned_mass: float
    pruned_mass_max: float
    chaos: float
    expand_seconds: float
    prune_seconds: float
    comm_seconds: float
    comm_bytes_sent: int
    #: flow-balance residual (max per-column L1 change vs. the previous
    #: iterate); None when the run does not track it (rmcl_tolerance == 0)
    flow_residual: float | None = None

    def as_dict(self) -> dict[str, object]:
        """Flat JSON-serializable view (for reports and benchmarks)."""
        return {
            "iteration": self.iteration,
            "backend": self.backend,
            "nnz": self.nnz,
            "flops": self.flops,
            "flops_per_rank": list(self.flops_per_rank),
            "compression_factor": self.compression_factor,
            "intermediate_bytes": self.intermediate_bytes,
            "pruned_entries": self.pruned_entries,
            "pruned_mass": self.pruned_mass,
            "pruned_mass_max": self.pruned_mass_max,
            "chaos": self.chaos,
            "expand_seconds": self.expand_seconds,
            "prune_seconds": self.prune_seconds,
            "comm_seconds": self.comm_seconds,
            "comm_bytes_sent": self.comm_bytes_sent,
            "flow_residual": self.flow_residual,
        }


@dataclass
class DistMclResult:
    """Everything one distributed Markov-clustering run produces."""

    labels: np.ndarray
    n_clusters: int
    converged: bool
    n_iterations: int
    grid_dim: int
    nprocs: int
    overlap: bool
    iterations: list[DistMclIterationStats] = field(default_factory=list)
    final_matrix: StochasticMatrix | None = None
    comm: SimCommunicator | None = None
    clock_per_rank: np.ndarray | None = None
    volume: dict[str, int] = field(default_factory=dict)
    memory: MemoryTracker = field(default_factory=MemoryTracker)
    #: per-rank seconds of this run alone (ledger deltas over the fit, so a
    #: reused communicator's earlier charges don't leak into the stats)
    category_seconds: dict[str, np.ndarray] = field(default_factory=dict)
    bytes_sent_per_rank: np.ndarray | None = None
    bytes_received_per_rank: np.ndarray | None = None

    @property
    def ledger(self):
        """The per-rank cost ledger of the run."""
        return self.comm.ledger if self.comm is not None else None

    @property
    def total_flops(self) -> int:
        """Expansion flops summed over all iterations."""
        return sum(it.flops for it in self.iterations)

    @property
    def total_pruned_mass(self) -> float:
        """Probability mass discarded by pruning, summed over iterations."""
        return sum(it.pruned_mass for it in self.iterations)

    def comm_stats(self) -> dict[str, object]:
        """Per-rank communication/compute summary for reports and extras.

        All vectors are this run's ledger *deltas*, so the summary stays
        correct when :meth:`DistMarkovClustering.fit` reused a communicator
        that already carried charges.
        """
        if not self.category_seconds:
            return {}
        return {
            "grid": f"{self.grid_dim}x{self.grid_dim}",
            "nprocs": self.nprocs,
            "overlap": self.overlap,
            "expand_seconds_per_rank": self.category_seconds[
                CLUSTER_EXPAND_CATEGORY
            ].tolist(),
            "prune_seconds_per_rank": self.category_seconds[
                CLUSTER_PRUNE_CATEGORY
            ].tolist(),
            "comm_seconds_per_rank": self.category_seconds[
                CLUSTER_COMM_CATEGORY
            ].tolist(),
            "overlap_hidden_per_rank": self.category_seconds[
                CLUSTER_OVERLAP_HIDDEN_CATEGORY
            ].tolist(),
            "clock_per_rank": (
                self.clock_per_rank.tolist() if self.clock_per_rank is not None else []
            ),
            "bytes_sent_per_rank": (
                self.bytes_sent_per_rank.tolist()
                if self.bytes_sent_per_rank is not None
                else []
            ),
            "bytes_received_per_rank": (
                self.bytes_received_per_rank.tolist()
                if self.bytes_received_per_rank is not None
                else []
            ),
            **{k: int(v) for k, v in self.volume.items()},
        }

    def total_seconds(self) -> float:
        """Bulk-synchronous stage time: slowest rank's clock plus its comm."""
        if self.clock_per_rank is None or not self.category_seconds:
            return 0.0
        comm_seconds = self.category_seconds[CLUSTER_COMM_CATEGORY]
        return float((self.clock_per_rank + comm_seconds).max())


class DistMarkovClustering:
    """Distributed MCL driver: the serial algorithm, one stored-row block at a time.

    Parameters mirror :class:`~repro.graph.mcl.MarkovClustering` (and produce
    bit-identical labels and final matrices for any setting), plus:

    nprocs:
        Number of virtual ranks; must be a perfect square (2D grid
        requirement, as for the search).
    overlap:
        Co-schedule ``expand(b+1)`` with ``prune(b)`` on the simulated
        clock, charging the hidden seconds to ``cluster_overlap_hidden``
        (the §VI-C pre-blocking idea applied to the cluster stage).  Labels
        are unaffected — expansion always reads the iteration-start matrix,
        so the overlap is dependency-free.
    overlap_depth:
        Speculative depth ``k`` of the overlapped schedule: expansions of
        blocks ``b+1..b+k`` may be in flight behind ``prune(b)``, scheduled
        through the same depth-``k`` algebra
        (:class:`repro.mpi.costmodel.OverlapWindow`) the search engine's
        threaded executor uses.  ``1`` reproduces the classic slot schedule
        bit for bit.  Ignored without ``overlap``.
    rmcl_tolerance:
        Flow-balance residual stop criterion for regularized runs (see
        :class:`~repro.graph.mcl.MarkovClustering`); the residual is
        evaluated per stripe and combined with a modeled ``max`` allreduce,
        so convergence (and the final labels) stay bit-identical to the
        single-rank driver.  ``0`` disables.
    blocks_per_grid_row:
        Stored-row sub-blocks per grid row (the cluster stage's analogue of
        the search's ``num_blocks``).  Consecutive sub-blocks of one grid
        row busy the *same* ranks, which is what gives the overlapped
        schedule time to hide; 1 reduces the blocking to one block per grid
        row (overlap then hides nothing — adjacent blocks live on disjoint
        ranks).  Clamped per grid row to the available stored rows.
    regularized:
        Regularized MCL: expansion multiplies by the original transition
        matrix each iteration (see :class:`~repro.graph.mcl.MarkovClustering`).
    """

    def __init__(
        self,
        nprocs: int = 1,
        inflation: float = 2.0,
        max_iterations: int = 60,
        prune_threshold: float = 1e-4,
        top_k: int | None = None,
        tolerance: float = 1e-9,
        spgemm_backend=None,
        batch_flops: int | None = None,
        overlap: bool = False,
        overlap_depth: int = 1,
        blocks_per_grid_row: int = 2,
        regularized: bool = False,
        rmcl_tolerance: float = 0.0,
    ) -> None:
        if not is_perfect_square(nprocs):
            raise ValueError(f"nprocs ({nprocs}) must be a perfect square")
        if inflation <= 1.0:
            raise ValueError("inflation must be > 1 (1.0 would never sharpen the walk)")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= prune_threshold < 1.0:
            raise ValueError("prune_threshold must be in [0, 1)")
        if top_k is not None and top_k < 1:
            raise ValueError("top_k must be >= 1 (or None)")
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if blocks_per_grid_row < 1:
            raise ValueError("blocks_per_grid_row must be >= 1")
        if overlap_depth < 1:
            raise ValueError("overlap_depth must be >= 1")
        if rmcl_tolerance < 0.0:
            raise ValueError("rmcl_tolerance must be non-negative (0 disables)")
        self.blocks_per_grid_row = int(blocks_per_grid_row)
        self.nprocs = int(nprocs)
        self.inflation = float(inflation)
        self.max_iterations = int(max_iterations)
        self.prune_threshold = float(prune_threshold)
        self.top_k = top_k
        self.tolerance = float(tolerance)
        self.spgemm_backend = spgemm_backend
        self.batch_flops = batch_flops
        self.overlap = bool(overlap)
        self.overlap_depth = int(overlap_depth)
        self.regularized = bool(regularized)
        self.rmcl_tolerance = float(rmcl_tolerance)
        resolve_kernel(spgemm_backend)  # fail fast on unknown names

    # ------------------------------------------------------------------ public API
    def fit(
        self, matrix: StochasticMatrix, comm: SimCommunicator | None = None
    ) -> DistMclResult:
        """Run distributed MCL to convergence (or ``max_iterations``).

        ``comm`` lets a caller reuse an existing communicator/ledger (the
        pipeline's cluster stage keeps its own); ``None`` creates a fresh
        ``nprocs``-rank world.
        """
        comm = SimCommunicator(self.nprocs) if comm is None else comm
        if comm.size != self.nprocs:
            raise ValueError(
                f"communicator has {comm.size} ranks, expected nprocs={self.nprocs}"
            )
        grid = comm.require_grid()
        dim = grid.grid_dim
        node = comm.cluster.node
        ledger = comm.ledger
        cluster_collectives = CollectiveEngine(
            network=comm.cluster.network,
            ledger=ledger,
            comm_category=CLUSTER_COMM_CATEGORY,
            counter_prefix=CLUSTER_COUNTER_PREFIX,
        )
        backend_name = (
            self.spgemm_backend
            if isinstance(self.spgemm_backend, str)
            else (DEFAULT_KERNEL if self.spgemm_backend is None
                  else getattr(self.spgemm_backend, "__name__", "custom"))
        )

        current = DistStochasticMatrix.from_matrix(matrix, comm)
        original = current if self.regularized else None
        predictor = _VolumePredictor()
        memory = MemoryTracker()
        memory.set_usage(DIST_MCL_ITERATE, current.memory_bytes())
        clock = np.zeros(comm.size)
        iterations: list[DistMclIterationStats] = []
        converged = False
        sent_counter = CLUSTER_COUNTER_PREFIX + "bytes_sent"
        received_counter = CLUSTER_COUNTER_PREFIX + "bytes_received"
        # snapshot the ledger so all reported stats are this run's deltas
        # (a reused communicator may already carry cluster_* charges)
        category_baseline = {
            cat: ledger.per_rank(cat)
            for cat in (
                CLUSTER_EXPAND_CATEGORY,
                CLUSTER_PRUNE_CATEGORY,
                CLUSTER_COMM_CATEGORY,
                CLUSTER_OVERLAP_HIDDEN_CATEGORY,
            )
        }
        sent_baseline = ledger.counter_per_rank(sent_counter)
        received_baseline = ledger.counter_per_rank(received_counter)

        # the stored-row stage blocking: blocks_per_grid_row sub-blocks nested
        # in each grid row, so consecutive blocks busy the same ranks and the
        # overlapped schedule has something to hide (clamped to the rows
        # available; the blocking is a schedule, so it is fixed up front)
        blocks: list[tuple[int, int, int]] = []  # (grid_row, lo, hi) global rows
        for r in range(dim):
            rlo, rhi = grid.block_bounds(current.n, r)
            parts = min(self.blocks_per_grid_row, rhi - rlo)
            for lo, hi in _balanced_chunks(rlo, rhi, parts):
                blocks.append((r, lo, hi))
        n_blocks = len(blocks)

        # the regularized right operand never changes; distribute it once
        original_dist = original.to_dist_sparse() if original is not None else None

        for iteration in range(1, self.max_iterations + 1):
            comm_seconds_before = ledger.per_rank(CLUSTER_COMM_CATEGORY)
            sent_before = ledger.counter_total(sent_counter)

            # ---- expand: blocked deferred-merge SUMMA over the grid ----------
            a_dist = current.to_dist_sparse()
            b_dist = original_dist if original_dist is not None else a_dist
            b_bytes = original.triplet_bytes() if original is not None else current.triplet_bytes()
            expansion_bytes = expansion_broadcast_bytes(
                dim, current.triplet_bytes(), b_bytes, n_blocks
            )
            predictor.sent += expansion_bytes
            predictor.received += expansion_bytes

            expand_seconds: list[np.ndarray] = []   # per block, per rank
            expanded_stripes: list[CsrMatrix] = []
            block_stats = SpGemmStats()
            flops_per_rank = np.zeros(comm.size)
            for _, lo, hi in blocks:
                result = summa(
                    a_dist.row_stripe((lo, hi)),
                    b_dist,
                    ArithmeticSemiring(),
                    output_shape=(current.n, current.n),
                    compute_category=CLUSTER_EXPAND_MEASURED_CATEGORY,
                    spgemm_backend=self.spgemm_backend,
                    batch_flops=self.batch_flops,
                    deferred_merge=True,
                    collectives=cluster_collectives,
                )
                seconds = np.asarray(result.flops_per_rank) / (node.sparse_gflops * 1e9)
                expand_seconds.append(seconds)
                flops_per_rank += result.flops_per_rank
                block_stats = block_stats.merge(result.stats)
                expanded_stripes.append(
                    _stripe_from_pieces(result.per_rank, (lo, hi), current.n)
                )
                for rank in range(comm.size):
                    ledger.charge(rank, CLUSTER_EXPAND_CATEGORY, float(seconds[rank]))

            # ---- inflate + prune decisions per stored-row block ---------------
            prune_seconds: list[np.ndarray] = []
            inflated_stripes: list[CsrMatrix] = []
            keep_masks: list[np.ndarray] = []
            prune_stats = PruneStats()
            for (r, lo, hi), stripe in zip(blocks, expanded_stripes):
                row_group = grid.row_group(r)
                rows_b = stripe.shape[0]
                # column-renormalization allreduce of the inflation pass
                # (payload sizes are exact — one float64 per stored row of
                # the block; the contents are representative, the actual
                # sums are produced inside inflate_tcsr)
                sums = column_sums_tcsr(stripe)
                cluster_collectives.allreduce(
                    {rank: sums for rank in row_group}, np.add
                )
                predictor.allreduce(rows_b * 8, dim)
                inflated = inflate_tcsr(stripe, self.inflation)
                owner = _column_owner(inflated.indices, grid, current.n)
                # ranking allgather: each rank contributes its column
                # segment's (index, value) pairs
                segments = _column_segments(inflated, owner, grid)
                cluster_collectives.allgather(
                    {rank: segments[c] for c, rank in enumerate(row_group)}
                )
                predictor.allgather([ROW_OP_ENTRY_BYTES * seg[0].size for seg in segments])
                keep, stats_b = prune_keep_mask(inflated, self.prune_threshold, self.top_k)
                prune_stats = prune_stats.merge(stats_b)
                inflated_stripes.append(inflated)
                keep_masks.append(keep)
                # inflation + mask: two streaming passes over each rank's block
                seconds = _row_op_seconds(
                    np.bincount(owner, minlength=dim), grid, node, r, passes=2.0
                )
                prune_seconds.append(seconds)
                for rank in range(comm.size):
                    ledger.charge(rank, CLUSTER_PRUNE_CATEGORY, float(seconds[rank]))

            # ---- schedule the blocks on the simulated clock -------------------
            if self.overlap and n_blocks > 1:
                # the shared depth-k overlap algebra: expand(b+1..b+k) in
                # flight behind prune(b); depth 1 reproduces the classic
                # charge_overlap_slot schedule bit for bit
                window = OverlapWindow(ledger, clock, CLUSTER_OVERLAP_HIDDEN_CATEGORY)
                window.run_schedule(
                    prune_seconds, expand_seconds, depth=self.overlap_depth
                )
            else:
                for b in range(n_blocks):
                    clock += expand_seconds[b] + prune_seconds[b]

            # ---- renormalize epilogue (global drop flag, renorm, chaos) ------
            dropped_any = prune_stats.pruned_entries > 0
            cluster_collectives.allreduce(
                {rank: np.array([float(dropped_any)]) for rank in range(comm.size)},
                np.maximum,
            )
            predictor.allreduce(8, comm.size)
            block_results: list[CsrMatrix] = []
            chaos = 0.0
            epilogue_seconds = np.zeros(comm.size)
            for (r, lo, hi), inflated, keep in zip(blocks, inflated_stripes, keep_masks):
                if dropped_any:
                    kept = apply_keep_mask(inflated, keep)
                    sums = column_sums_tcsr(kept)
                    cluster_collectives.allreduce(
                        {rank: sums for rank in grid.row_group(r)}, np.add
                    )
                    predictor.allreduce(kept.shape[0] * 8, dim)
                    stripe = normalize_tcsr(kept)
                else:
                    stripe = inflated
                block_results.append(stripe)
                chaos = max(chaos, chaos_tcsr(stripe))
                cluster_collectives.allreduce(
                    {
                        rank: (np.zeros(stripe.shape[0]), np.zeros(stripe.shape[0]))
                        for rank in grid.row_group(r)
                    },
                    lambda a, b: a,
                )
                predictor.allreduce(stripe.shape[0] * 16, dim)
                epilogue_seconds += _row_op_seconds(
                    np.bincount(_column_owner(stripe.indices, grid, current.n), minlength=dim),
                    grid,
                    node,
                    r,
                    passes=2.0,
                )
            cluster_collectives.allreduce(
                {rank: np.array([chaos]) for rank in range(comm.size)}, np.maximum
            )
            predictor.allreduce(8, comm.size)
            for rank in range(comm.size):
                ledger.charge(rank, CLUSTER_PRUNE_CATEGORY, float(epilogue_seconds[rank]))
            clock += epilogue_seconds

            # reassemble the grid-row stripes from their sub-blocks
            new_stripes = [
                _vstack_tcsr(
                    [s for (r, _, _), s in zip(blocks, block_results) if r == row],
                    current.n,
                )
                for row in range(dim)
            ]
            # flow-balance residual (R-MCL stop criterion): per-stripe L1
            # change combined with a modeled max allreduce — bit-identical
            # to the single-rank residual on the whole matrix
            residual = None
            if self.rmcl_tolerance > 0:
                residual = max(
                    flow_residual_tcsr(old, new)
                    for old, new in zip(current.stripes, new_stripes)
                )
                cluster_collectives.allreduce(
                    {rank: np.array([residual]) for rank in range(comm.size)},
                    np.maximum,
                )
                predictor.allreduce(8, comm.size)
            current = DistStochasticMatrix(comm, new_stripes, current.n)
            memory.set_usage(DIST_MCL_ITERATE, current.memory_bytes())
            memory.set_usage(DIST_MCL_INTERMEDIATE, block_stats.intermediate_bytes)
            comm_seconds = float(
                (ledger.per_rank(CLUSTER_COMM_CATEGORY) - comm_seconds_before).max()
            )
            iterations.append(
                DistMclIterationStats(
                    iteration=iteration,
                    backend=backend_name,
                    nnz=current.nnz,
                    flops=block_stats.flops,
                    flops_per_rank=tuple(float(f) for f in flops_per_rank),
                    compression_factor=block_stats.compression_factor,
                    intermediate_bytes=block_stats.intermediate_bytes,
                    pruned_entries=prune_stats.pruned_entries,
                    pruned_mass=prune_stats.pruned_mass,
                    pruned_mass_max=prune_stats.pruned_mass_max,
                    chaos=chaos,
                    expand_seconds=float(sum(s.max() for s in expand_seconds)),
                    prune_seconds=float(
                        sum(s.max() for s in prune_seconds) + epilogue_seconds.max()
                    ),
                    comm_seconds=comm_seconds,
                    comm_bytes_sent=int(ledger.counter_total(sent_counter) - sent_before),
                    flow_residual=residual,
                )
            )
            if chaos <= self.tolerance or (
                residual is not None and residual <= self.rmcl_tolerance
            ):
                converged = True
                break

        final = current.to_matrix()
        labels = interpret_clusters(final)
        category_seconds = {
            cat: ledger.per_rank(cat) - base for cat, base in category_baseline.items()
        }
        bytes_sent_per_rank = ledger.counter_per_rank(sent_counter) - sent_baseline
        bytes_received_per_rank = (
            ledger.counter_per_rank(received_counter) - received_baseline
        )
        volume = {
            "predicted_bytes_sent": predictor.sent,
            "predicted_bytes_received": predictor.received,
            "charged_bytes_sent": int(bytes_sent_per_rank.sum()),
            "charged_bytes_received": int(bytes_received_per_rank.sum()),
        }
        return DistMclResult(
            labels=labels,
            n_clusters=int(labels.max()) + 1 if labels.size else 0,
            converged=converged,
            n_iterations=len(iterations),
            grid_dim=dim,
            nprocs=comm.size,
            overlap=self.overlap,
            iterations=iterations,
            final_matrix=final,
            comm=comm,
            clock_per_rank=clock,
            volume=volume,
            memory=memory,
            category_seconds=category_seconds,
            bytes_sent_per_rank=bytes_sent_per_rank,
            bytes_received_per_rank=bytes_received_per_rank,
        )

    def fit_graph(
        self, graph, transform: str = "ani", self_loop_weight: float = 1.0
    ) -> DistMclResult:
        """Convenience: build the transition matrix from a graph, then fit."""
        return self.fit(
            StochasticMatrix.from_similarity_graph(
                graph, transform=transform, self_loop_weight=self_loop_weight
            )
        )

def _balanced_chunks(lo: int, hi: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into ``parts`` balanced contiguous chunks.

    Offset wrapper around the canonical balanced split the SUMMA blocking
    and the process grid use (:func:`repro.distsparse.blocked_summa._chunk_bounds`),
    so the MCL sub-blocking can never diverge from the convention it mirrors.
    """
    return [
        (lo + c0, lo + c1)
        for c0, c1 in (_chunk_bounds(hi - lo, parts, i) for i in range(parts))
    ]


def _vstack_tcsr(parts: list[CsrMatrix], n_cols: int) -> CsrMatrix:
    """Vertically concatenate stored-row stripes (contiguous row ranges)."""
    total_rows = sum(p.shape[0] for p in parts)
    indptr = np.zeros(total_rows + 1, dtype=np.int64)
    row = 0
    offset = 0
    for part in parts:
        indptr[row + 1 : row + part.shape[0] + 1] = part.indptr[1:] + offset
        row += part.shape[0]
        offset += part.nnz
    indices = (
        np.concatenate([p.indices for p in parts]) if parts else np.empty(0, dtype=np.int64)
    )
    values = (
        np.concatenate([p.values for p in parts]) if parts else np.empty(0, dtype=np.float64)
    )
    return CsrMatrix((total_rows, n_cols), indptr, indices, values)


def _column_owner(indices: np.ndarray, grid, n: int) -> np.ndarray:
    """Grid column owning each stored column index (shared by every split)."""
    col_lo = np.array(
        [grid.block_bounds(n, c)[0] for c in range(grid.grid_dim)], dtype=np.int64
    )
    return np.searchsorted(col_lo, indices, side="right") - 1


def _row_op_seconds(
    counts: np.ndarray, grid, node, grid_row: int, passes: float
) -> np.ndarray:
    """Modeled per-rank seconds of streaming row ops over one stripe.

    ``counts`` holds the stripe's stored entries per grid column (from
    ``np.bincount`` of :func:`_column_owner`).  Each rank of the owning grid
    row streams its own column segment ``passes`` times at the node's memory
    bandwidth (16 bytes per stored entry: index + value); ranks outside the
    grid row are idle for this stripe.
    """
    seconds = np.zeros(grid.nprocs)
    bandwidth = node.memory_bandwidth_gbps * 1e9
    for c in range(grid.grid_dim):
        seconds[grid.rank_of(grid_row, c)] = (
            passes * ROW_OP_ENTRY_BYTES * float(counts[c]) / bandwidth
        )
    return seconds


def _stripe_from_pieces(
    pieces: list[CooMatrix], row_range: tuple[int, int], n: int
) -> CsrMatrix:
    """Assemble a stored-row stripe from the SUMMA output's per-rank pieces.

    The pieces are disjoint global-coordinate blocks; sorting the
    concatenation row-major reproduces exactly the triplet order a serial
    kernel's output has within this row range, so the stripe is bit-identical
    to the corresponding ``row_slice`` of the serial expansion.
    """
    lo, hi = row_range
    nonempty = [p for p in pieces if p.nnz]
    if not nonempty:
        return CsrMatrix(
            (hi - lo, n),
            np.zeros(hi - lo + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    rows = np.concatenate([p.rows for p in nonempty]) - lo
    cols = np.concatenate([p.cols for p in nonempty])
    values = np.concatenate([p.values for p in nonempty])
    return CsrMatrix.from_coo(CooMatrix((hi - lo, n), rows, cols, values, check=False))


def _column_segments(
    stripe: CsrMatrix, owner: np.ndarray, grid
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split a stripe's (index, value) pairs by owning grid column."""
    return [
        (stripe.indices[owner == c], stripe.values[owner == c])
        for c in range(grid.grid_dim)
    ]
