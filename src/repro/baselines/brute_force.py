"""Brute-force all-vs-all search: the sensitivity ground truth.

Aligns every unordered pair of sequences (``n*(n-1)/2`` alignments) and
applies the same ANI/coverage thresholds as PASTIS.  Whatever this search
finds is, by construction, everything there is to find, so the recall of any
seeded method (PASTIS, the MMseqs2-like or DIAMOND-like baselines) is
measured against it.  Only feasible for small datasets — which is exactly the
paper's point about why k-mer based candidate discovery exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.substitution import ScoringScheme, DEFAULT_SCORING
from ..core.costing import CostModel
from ..core.similarity_graph import SimilarityGraph
from ..sequences.sequence import SequenceSet
from .common import BaselineResult, BaselineStats, align_and_filter


@dataclass
class BruteForceSearch:
    """Align every pair of sequences (no candidate filtering)."""

    scoring: ScoringScheme = field(default_factory=lambda: DEFAULT_SCORING)
    ani_threshold: float = 0.30
    coverage_threshold: float = 0.70
    batch_size: int = 128
    cost_model: CostModel = field(default_factory=CostModel)

    def run(self, sequences: SequenceSet) -> BaselineResult:
        """Search ``sequences`` against themselves exhaustively."""
        n = len(sequences)
        if n < 2:
            return BaselineResult(
                similarity_graph=SimilarityGraph.empty(n), stats=BaselineStats(name="brute_force")
            )
        rows, cols = np.triu_indices(n, k=1)
        edges, cells, measured = align_and_filter(
            sequences,
            rows.astype(np.int64),
            cols.astype(np.int64),
            scoring=self.scoring,
            ani_threshold=self.ani_threshold,
            coverage_threshold=self.coverage_threshold,
            batch_size=self.batch_size,
        )
        graph = SimilarityGraph.from_edges(edges, n)
        stats = BaselineStats(
            name="brute_force",
            candidates=int(rows.size),
            alignments=int(rows.size),
            similar_pairs=graph.num_edges,
            alignment_cells=cells,
            modeled_seconds=self.cost_model.alignment_seconds(cells),
            measured_seconds=measured,
            peak_node_bytes=int(sequences.memory_bytes()),
        )
        return BaselineResult(similarity_graph=graph, stats=stats)
