"""Baseline search tools PASTIS is compared against.

Three baselines are provided, all operating on the same
:class:`repro.sequences.sequence.SequenceSet` inputs and producing the same
:class:`repro.core.similarity_graph.SimilarityGraph` outputs so they can be
compared head-to-head with the PASTIS pipeline:

* :mod:`repro.baselines.brute_force` — aligns every pair; the sensitivity
  ground truth (what a search with perfect recall would return);
* :mod:`repro.baselines.mmseqs_like` — an MMseqs2-style distributed search:
  one sequence set is chunked over nodes while the other set's k-mer index is
  **replicated** on every node (the memory-scaling limitation §IV calls out);
* :mod:`repro.baselines.diamond_like` — a DIAMOND-style double-indexed
  search: both sets are chunked, the Cartesian product of chunks forms work
  packages processed independently, and intermediate results are staged
  through the (simulated) file system (the IO-pressure behaviour §IV calls
  out).  Seed statistics are computed *per chunk*, which is why its results
  change with the block size — unlike PASTIS.
"""

from .common import BaselineStats, BaselineResult, candidate_recall
from .brute_force import BruteForceSearch
from .mmseqs_like import MmseqsLikeSearch
from .diamond_like import DiamondLikeSearch

__all__ = [
    "BaselineStats",
    "BaselineResult",
    "candidate_recall",
    "BruteForceSearch",
    "MmseqsLikeSearch",
    "DiamondLikeSearch",
]
