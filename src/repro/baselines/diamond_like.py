"""DIAMOND-like distributed search baseline.

DIAMOND's distributed mode (§IV) targets commodity clusters: it avoids MPI,
splits **both** the query and the reference set into chunks, and treats every
element of the Cartesian product of the two chunkings as an independent
*work package* that a worker process claims, processes, and whose
intermediate results it stages through the POSIX shared file system before a
final join.  Two behaviours distinguish it from PASTIS and are reproduced
here:

* **IO pressure** — every work package writes its intermediate hits to the
  shared file system and the final join reads them all back;
  :class:`repro.baselines.common.BaselineStats.intermediate_io_bytes`
  accumulates that volume.
* **Block-size-dependent results** — seed statistics (here: the frequent
  k-mer cutoff, DIAMOND's complexity masking analogue) are computed *per
  chunk*, so which seeds get masked depends on the chunking; the DIAMOND
  documentation itself warns that "results will not be completely identical
  for different values of the block size".  PASTIS, by contrast, is provably
  blocking-independent (a property test in this repository).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.substitution import ScoringScheme, DEFAULT_SCORING
from ..core.costing import CostModel
from ..core.similarity_graph import SimilarityGraph
from ..sequences.kmers import KmerExtractor
from ..sequences.sequence import SequenceSet
from .common import BaselineResult, BaselineStats, align_and_filter


@dataclass
class DiamondLikeSearch:
    """Double-chunked, work-package based search with file-system staging."""

    kmer_length: int = 6
    common_kmer_threshold: int = 2
    query_chunks: int = 2
    reference_chunks: int = 2
    #: per-chunk frequent-seed masking: k-mers occurring in more than this
    #: fraction of the chunk's sequences are ignored as seeds (chunk-local!)
    max_seed_fraction: float = 0.5
    workers: int = 4
    scoring: ScoringScheme = field(default_factory=lambda: DEFAULT_SCORING)
    ani_threshold: float = 0.30
    coverage_threshold: float = 0.70
    batch_size: int = 128
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.query_chunks < 1 or self.reference_chunks < 1:
            raise ValueError("chunk counts must be >= 1")
        if not 0.0 < self.max_seed_fraction <= 1.0:
            raise ValueError("max_seed_fraction must be in (0, 1]")

    # ------------------------------------------------------------------ search
    def run(self, sequences: SequenceSet) -> BaselineResult:
        """Many-against-many search of ``sequences`` against themselves."""
        n = len(sequences)
        extractor = KmerExtractor(k=self.kmer_length)
        seq_ids, kmer_ids, _ = extractor.extract(sequences)

        q_bounds = np.linspace(0, n, self.query_chunks + 1).astype(np.int64)
        r_bounds = np.linspace(0, n, self.reference_chunks + 1).astype(np.int64)

        all_rows: list[np.ndarray] = []
        all_cols: list[np.ndarray] = []
        intermediate_bytes = 0
        packages = 0
        per_package_candidates: list[int] = []

        for qc in range(self.query_chunks):
            qlo, qhi = int(q_bounds[qc]), int(q_bounds[qc + 1])
            q_mask = (seq_ids >= qlo) & (seq_ids < qhi)
            for rc in range(self.reference_chunks):
                rlo, rhi = int(r_bounds[rc]), int(r_bounds[rc + 1])
                r_mask = (seq_ids >= rlo) & (seq_ids < rhi)
                rows, cols = self._process_package(
                    seq_ids[q_mask], kmer_ids[q_mask], seq_ids[r_mask], kmer_ids[r_mask]
                )
                packages += 1
                per_package_candidates.append(int(rows.size))
                # the package writes its hits to the shared FS (16 bytes/hit)
                intermediate_bytes += int(rows.size) * 16
                all_rows.append(rows)
                all_cols.append(cols)

        rows = np.concatenate(all_rows) if all_rows else np.empty(0, dtype=np.int64)
        cols = np.concatenate(all_cols) if all_cols else np.empty(0, dtype=np.int64)
        lo_idx = np.minimum(rows, cols)
        hi_idx = np.maximum(rows, cols)
        keep = lo_idx != hi_idx
        keys = lo_idx[keep] * np.int64(n) + hi_idx[keep]
        unique_keys = np.unique(keys)
        rows = (unique_keys // n).astype(np.int64)
        cols = (unique_keys % n).astype(np.int64)

        edges, cells, measured = align_and_filter(
            sequences,
            rows,
            cols,
            scoring=self.scoring,
            ani_threshold=self.ani_threshold,
            coverage_threshold=self.coverage_threshold,
            batch_size=self.batch_size,
        )
        graph = SimilarityGraph.from_edges(edges, n)
        # the final join reads everything back
        intermediate_bytes *= 2

        workers = max(self.workers, 1)
        align_seconds = self.cost_model.alignment_seconds(cells / workers)
        io_seconds = intermediate_bytes / (1.0e9)  # ~1 GB/s effective shared-FS stream
        stats = BaselineStats(
            name="diamond_like",
            candidates=int(rows.size),
            alignments=int(rows.size),
            similar_pairs=graph.num_edges,
            alignment_cells=cells,
            intermediate_io_bytes=intermediate_bytes,
            peak_node_bytes=int(sequences.memory_bytes() // max(self.reference_chunks, 1)),
            modeled_seconds=align_seconds + io_seconds,
            measured_seconds=measured,
            extras={"work_packages": float(packages)},
        )
        return BaselineResult(similarity_graph=graph, stats=stats)

    # ------------------------------------------------------------------ helpers
    def _process_package(
        self,
        q_seq_ids: np.ndarray,
        q_kmer_ids: np.ndarray,
        r_seq_ids: np.ndarray,
        r_kmer_ids: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Seed-join one query chunk against one reference chunk.

        Frequent seeds are masked *relative to this chunk pair* — the source
        of DIAMOND's block-size-dependent sensitivity.
        """
        if q_seq_ids.size == 0 or r_seq_ids.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # chunk-local frequent-seed masking
        n_ref_sequences = np.unique(r_seq_ids).size
        ref_kmers, ref_counts = np.unique(r_kmer_ids, return_counts=True)
        frequent = ref_kmers[ref_counts > self.max_seed_fraction * max(n_ref_sequences, 1)]
        if frequent.size:
            q_keep = ~np.isin(q_kmer_ids, frequent)
            r_keep = ~np.isin(r_kmer_ids, frequent)
            q_seq_ids, q_kmer_ids = q_seq_ids[q_keep], q_kmer_ids[q_keep]
            r_seq_ids, r_kmer_ids = r_seq_ids[r_keep], r_kmer_ids[r_keep]
        if q_seq_ids.size == 0 or r_seq_ids.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

        order = np.argsort(r_kmer_ids, kind="stable")
        r_kmer_sorted = r_kmer_ids[order]
        r_seq_sorted = r_seq_ids[order]
        left = np.searchsorted(r_kmer_sorted, q_kmer_ids, side="left")
        right = np.searchsorted(r_kmer_sorted, q_kmer_ids, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        rows = np.repeat(q_seq_ids, counts)
        offsets = np.zeros(q_seq_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        slots = np.arange(total, dtype=np.int64)
        occ = np.searchsorted(offsets, slots, side="right") - 1
        cols = r_seq_sorted[left[occ] + (slots - offsets[occ])]
        modulus = np.int64(max(int(r_seq_sorted.max()), int(rows.max())) + 1)
        keys = rows * modulus + cols
        uniq, cnt = np.unique(keys, return_counts=True)
        good = uniq[cnt >= self.common_kmer_threshold]
        return (good // modulus).astype(np.int64), (good % modulus).astype(np.int64)
