"""Shared plumbing for the baseline search tools."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.adept import AdeptDriver
from ..align.result import coverage_array, identity_array
from ..align.substitution import ScoringScheme, DEFAULT_SCORING
from ..core.align_phase import EDGE_DTYPE
from ..core.similarity_graph import SimilarityGraph
from ..sequences.sequence import SequenceSet


@dataclass
class BaselineStats:
    """Workload and resource statistics of one baseline run."""

    name: str = "baseline"
    candidates: int = 0
    alignments: int = 0
    similar_pairs: int = 0
    alignment_cells: int = 0
    #: bytes of index data replicated on every node (MMseqs2-style)
    replicated_index_bytes_per_node: int = 0
    #: bytes staged through the shared file system (DIAMOND-style)
    intermediate_io_bytes: int = 0
    #: modelled per-node peak memory
    peak_node_bytes: int = 0
    #: modelled total runtime (node seconds on the critical path)
    modeled_seconds: float = 0.0
    measured_seconds: float = 0.0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def alignments_per_second(self) -> float:
        """Alignments per modelled second."""
        return self.alignments / self.modeled_seconds if self.modeled_seconds > 0 else 0.0


@dataclass
class BaselineResult:
    """Similarity graph plus statistics of a baseline run."""

    similarity_graph: SimilarityGraph
    stats: BaselineStats


def align_and_filter(
    sequences: SequenceSet,
    pair_rows: np.ndarray,
    pair_cols: np.ndarray,
    scoring: ScoringScheme = DEFAULT_SCORING,
    ani_threshold: float = 0.30,
    coverage_threshold: float = 0.70,
    batch_size: int = 128,
) -> tuple[np.ndarray, int, float]:
    """Align candidate pairs and keep those passing the thresholds.

    Returns ``(edges, cells, measured_seconds)``.
    """
    driver = AdeptDriver(scoring=scoring, batch_size=batch_size)
    results, stats = driver.align_pairs(sequences, pair_rows, pair_cols)
    lengths = sequences.lengths
    ani = identity_array(results)
    cov = coverage_array(results, lengths[pair_rows], lengths[pair_cols])
    mask = (ani >= ani_threshold) & (cov >= coverage_threshold)
    edges = np.zeros(int(mask.sum()), dtype=EDGE_DTYPE)
    edges["row"] = pair_rows[mask]
    edges["col"] = pair_cols[mask]
    edges["score"] = results["score"][mask]
    edges["ani"] = ani[mask]
    edges["coverage"] = cov[mask]
    return edges, int(results["cells"].sum()), stats.measured_seconds


def candidate_recall(graph: SimilarityGraph, reference: SimilarityGraph) -> float:
    """Fraction of the reference graph's edges recovered by ``graph``.

    The standard sensitivity metric when comparing a seeded search against
    the brute-force ground truth.
    """
    ref_edges = reference.edge_key_set()
    if not ref_edges:
        return 1.0
    found = graph.edge_key_set()
    return len(ref_edges & found) / len(ref_edges)
