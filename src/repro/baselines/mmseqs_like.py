"""MMseqs2-like distributed search baseline.

MMseqs2's MPI mode splits *one* of the two sequence sets into chunks over the
nodes and keeps the other set's index whole on every node (§IV): either each
node searches **all queries against its chunk of the reference** (mode
``"split_reference"``) or **its chunk of the queries against all references**
(mode ``"split_query"``).  Either way, at least one full k-mer index is
replicated per node — the memory-scaling limitation that motivates PASTIS's
2D-distributed sparse matrices.

The prefilter here is the same k-mer seeding PASTIS uses (shared k-mer count
above a threshold), computed chunk-locally; because the k-mer index of the
non-chunked set is complete on every node, the union of the chunk results is
independent of the chunking — but the *per-node memory* is not, which is what
:class:`repro.baselines.common.BaselineStats` captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..align.substitution import ScoringScheme, DEFAULT_SCORING
from ..core.costing import CostModel
from ..core.similarity_graph import SimilarityGraph
from ..sequences.kmers import KmerExtractor
from ..sequences.sequence import SequenceSet
from .common import BaselineResult, BaselineStats, align_and_filter


@dataclass
class MmseqsLikeSearch:
    """Chunk-one-set, replicate-the-other distributed search."""

    kmer_length: int = 6
    common_kmer_threshold: int = 2
    nodes: int = 4
    mode: str = "split_reference"
    scoring: ScoringScheme = field(default_factory=lambda: DEFAULT_SCORING)
    ani_threshold: float = 0.30
    coverage_threshold: float = 0.70
    batch_size: int = 128
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.mode not in ("split_reference", "split_query"):
            raise ValueError("mode must be 'split_reference' or 'split_query'")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")

    # ------------------------------------------------------------------ search
    def run(self, sequences: SequenceSet) -> BaselineResult:
        """Many-against-many search of ``sequences`` against themselves."""
        n = len(sequences)
        extractor = KmerExtractor(k=self.kmer_length)
        seq_ids, kmer_ids, _ = extractor.extract(sequences)

        # full k-mer index of the replicated set: kmer -> sorted sequence ids
        order = np.argsort(kmer_ids, kind="stable")
        kmer_sorted = kmer_ids[order]
        seq_sorted = seq_ids[order]
        index_bytes = int(kmer_sorted.nbytes + seq_sorted.nbytes)

        chunk_bounds = np.linspace(0, n, self.nodes + 1).astype(np.int64)
        candidate_rows: list[np.ndarray] = []
        candidate_cols: list[np.ndarray] = []
        per_node_candidates = np.zeros(self.nodes, dtype=np.int64)

        for node in range(self.nodes):
            lo, hi = int(chunk_bounds[node]), int(chunk_bounds[node + 1])
            if lo >= hi:
                continue
            chunk_mask = (seq_ids >= lo) & (seq_ids < hi)
            rows, cols = self._prefilter_chunk(
                seq_ids[chunk_mask], kmer_ids[chunk_mask], kmer_sorted, seq_sorted
            )
            per_node_candidates[node] = rows.size
            candidate_rows.append(rows)
            candidate_cols.append(cols)

        if candidate_rows:
            rows = np.concatenate(candidate_rows)
            cols = np.concatenate(candidate_cols)
        else:
            rows = np.empty(0, dtype=np.int64)
            cols = np.empty(0, dtype=np.int64)

        # each unordered pair once, no self-pairs
        lo_idx = np.minimum(rows, cols)
        hi_idx = np.maximum(rows, cols)
        keep = lo_idx != hi_idx
        keys = lo_idx[keep] * np.int64(n) + hi_idx[keep]
        unique_keys = np.unique(keys)
        rows = (unique_keys // n).astype(np.int64)
        cols = (unique_keys % n).astype(np.int64)

        edges, cells, measured = align_and_filter(
            sequences,
            rows,
            cols,
            scoring=self.scoring,
            ani_threshold=self.ani_threshold,
            coverage_threshold=self.coverage_threshold,
            batch_size=self.batch_size,
        )
        graph = SimilarityGraph.from_edges(edges, n)

        # modelled time: prefilter (memory-bound) + alignment, on the slowest node
        align_per_node = self.cost_model.alignment_seconds(cells / max(self.nodes, 1))
        prefilter_per_node = self.cost_model.sparse_traversal_seconds(
            index_bytes + int(per_node_candidates.max()) * 16
        )
        stats = BaselineStats(
            name="mmseqs_like",
            candidates=int(rows.size),
            alignments=int(rows.size),
            similar_pairs=graph.num_edges,
            alignment_cells=cells,
            replicated_index_bytes_per_node=index_bytes,
            peak_node_bytes=index_bytes + int(sequences.memory_bytes()),
            modeled_seconds=align_per_node + prefilter_per_node,
            measured_seconds=measured,
            extras={"mode": 0.0 if self.mode == "split_reference" else 1.0},
        )
        return BaselineResult(similarity_graph=graph, stats=stats)

    # ------------------------------------------------------------------ helpers
    def _prefilter_chunk(
        self,
        chunk_seq_ids: np.ndarray,
        chunk_kmer_ids: np.ndarray,
        index_kmers: np.ndarray,
        index_seqs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Shared-k-mer prefilter of one chunk against the full replicated index."""
        if chunk_seq_ids.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # for every chunk k-mer occurrence, find all index sequences sharing it
        left = np.searchsorted(index_kmers, chunk_kmer_ids, side="left")
        right = np.searchsorted(index_kmers, chunk_kmer_ids, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        rows = np.repeat(chunk_seq_ids, counts)
        offsets = np.zeros(chunk_seq_ids.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        slots = np.arange(total, dtype=np.int64)
        occ = np.searchsorted(offsets, slots, side="right") - 1
        cols = index_seqs[left[occ] + (slots - offsets[occ])]
        # count shared k-mers per (row, col) pair and apply the threshold
        keys = rows * np.int64(index_seqs.max() + 1) + cols
        uniq, cnt = np.unique(keys, return_counts=True)
        good = uniq[cnt >= self.common_kmer_threshold]
        pair_rows = (good // np.int64(index_seqs.max() + 1)).astype(np.int64)
        pair_cols = (good % np.int64(index_seqs.max() + 1)).astype(np.int64)
        return pair_rows, pair_cols
