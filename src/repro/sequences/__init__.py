"""Sequence substrate: alphabets, packed sequence sets, FASTA I/O, k-mers.

This subpackage provides everything PASTIS needs on the "biology" side:

* :mod:`repro.sequences.alphabet` — the 20-letter amino-acid alphabet and
  reduced alphabets (Murphy-10 etc.) used to improve sensitivity;
* :mod:`repro.sequences.sequence` — :class:`SequenceSet`, a packed
  (concatenated ``uint8`` codes + offsets) container designed for
  vectorized k-mer extraction and cheap slicing/distribution;
* :mod:`repro.sequences.fasta` — FASTA reader/writer, including a
  partitioned reader that mimics parallel MPI-IO input splitting;
* :mod:`repro.sequences.kmers` — k-mer extraction, encoding and
  substitute (nearest-neighbour) k-mer generation;
* :mod:`repro.sequences.synthetic` — family-based synthetic metagenome
  generator used in place of the (unavailable) 405M-protein Metaclust data;
* :mod:`repro.sequences.distribution` — sequence-length distributions.
"""

from .alphabet import Alphabet, PROTEIN, MURPHY10, DAYHOFF6, reduced_alphabet
from .sequence import Sequence, SequenceSet
from .fasta import read_fasta, write_fasta, read_fasta_partitioned, FastaRecord
from .kmers import KmerExtractor, encode_kmers, substitute_kmers
from .synthetic import SyntheticDatasetConfig, synthetic_dataset, make_family
from .distribution import LengthDistribution, metagenome_length_distribution

__all__ = [
    "Alphabet",
    "PROTEIN",
    "MURPHY10",
    "DAYHOFF6",
    "reduced_alphabet",
    "Sequence",
    "SequenceSet",
    "read_fasta",
    "write_fasta",
    "read_fasta_partitioned",
    "FastaRecord",
    "KmerExtractor",
    "encode_kmers",
    "substitute_kmers",
    "SyntheticDatasetConfig",
    "synthetic_dataset",
    "make_family",
    "LengthDistribution",
    "metagenome_length_distribution",
]
