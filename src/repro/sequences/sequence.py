"""Packed sequence containers.

A :class:`SequenceSet` stores all residues of a dataset in one contiguous
``uint8`` array plus an offsets array, the layout used by high-performance
sequence tools (and by ADEPT's host-side packing).  This enables

* vectorized k-mer extraction with no per-sequence Python overhead,
* O(1) slicing into per-rank / per-block subsets during distribution,
* cheap length statistics (the basis of the paper's load-imbalance metric
  "aligned pair lengths": the sum of DP-matrix sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence as TypingSequence

import numpy as np

from .alphabet import Alphabet, PROTEIN


@dataclass(frozen=True)
class Sequence:
    """A single named protein sequence (decoded, convenience object)."""

    name: str
    residues: str

    def __len__(self) -> int:
        return len(self.residues)


class SequenceSet:
    """An immutable packed collection of protein sequences.

    Parameters
    ----------
    data:
        Concatenated residue codes (``uint8``).
    offsets:
        ``int64`` array of length ``n+1``; sequence ``i`` occupies
        ``data[offsets[i]:offsets[i+1]]``.
    names:
        Sequence identifiers (numpy object/str array or list).
    alphabet:
        Alphabet the codes were produced with.
    """

    def __init__(
        self,
        data: np.ndarray,
        offsets: np.ndarray,
        names: TypingSequence[str] | np.ndarray,
        alphabet: Alphabet = PROTEIN,
    ) -> None:
        data = np.ascontiguousarray(data, dtype=np.uint8)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a 1D array of length n+1")
        if offsets[0] != 0 or offsets[-1] != data.size:
            raise ValueError("offsets must start at 0 and end at len(data)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        names_arr = np.asarray(names, dtype=object)
        if names_arr.size != offsets.size - 1:
            raise ValueError("names length must match number of sequences")
        self._data = data
        self._offsets = offsets
        self._names = names_arr
        self._alphabet = alphabet

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_strings(
        cls,
        sequences: Iterable[str],
        names: Iterable[str] | None = None,
        alphabet: Alphabet = PROTEIN,
    ) -> "SequenceSet":
        """Build a set from residue strings."""
        seq_list = list(sequences)
        if names is None:
            name_list = [f"seq{i}" for i in range(len(seq_list))]
        else:
            name_list = list(names)
            if len(name_list) != len(seq_list):
                raise ValueError("names and sequences must have equal length")
        lengths = np.fromiter((len(s) for s in seq_list), dtype=np.int64, count=len(seq_list))
        offsets = np.zeros(len(seq_list) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        data = np.empty(int(offsets[-1]), dtype=np.uint8)
        for i, s in enumerate(seq_list):
            data[offsets[i] : offsets[i + 1]] = alphabet.encode(s)
        return cls(data, offsets, name_list, alphabet)

    @classmethod
    def from_records(
        cls, records: Iterable[Sequence], alphabet: Alphabet = PROTEIN
    ) -> "SequenceSet":
        """Build a set from :class:`Sequence` records."""
        records = list(records)
        return cls.from_strings(
            (r.residues for r in records), (r.name for r in records), alphabet
        )

    @classmethod
    def concatenate(cls, parts: Iterable["SequenceSet"]) -> "SequenceSet":
        """Concatenate several sets (used when joining per-rank partitions)."""
        parts = list(parts)
        if not parts:
            raise ValueError("cannot concatenate zero SequenceSets")
        alphabet = parts[0].alphabet
        for p in parts:
            if p.alphabet.name != alphabet.name:
                raise ValueError("all parts must share the same alphabet")
        data = np.concatenate([p._data for p in parts])
        lengths = np.concatenate([p.lengths for p in parts])
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        names = np.concatenate([p._names for p in parts])
        return cls(data, offsets, names, alphabet)

    # ------------------------------------------------------------ properties
    @property
    def alphabet(self) -> Alphabet:
        """Alphabet used for the packed codes."""
        return self._alphabet

    @property
    def data(self) -> np.ndarray:
        """Concatenated residue codes (read-only view)."""
        view = self._data.view()
        view.flags.writeable = False
        return view

    @property
    def offsets(self) -> np.ndarray:
        """Offsets array of length ``n+1`` (read-only view)."""
        view = self._offsets.view()
        view.flags.writeable = False
        return view

    @property
    def names(self) -> np.ndarray:
        """Sequence identifiers."""
        return self._names

    @property
    def lengths(self) -> np.ndarray:
        """Per-sequence lengths (``int64``)."""
        return np.diff(self._offsets)

    @property
    def total_residues(self) -> int:
        """Total number of residues across all sequences."""
        return int(self._data.size)

    def __len__(self) -> int:
        return self._offsets.size - 1

    # ------------------------------------------------------------ access
    def codes(self, index: int) -> np.ndarray:
        """Packed codes of sequence ``index`` (zero-copy view)."""
        i = self._check_index(index)
        return self._data[self._offsets[i] : self._offsets[i + 1]]

    def residues(self, index: int) -> str:
        """Decoded residue string of sequence ``index``."""
        return self._alphabet.decode(self.codes(index))

    def record(self, index: int) -> Sequence:
        """Return sequence ``index`` as a :class:`Sequence` record."""
        i = self._check_index(index)
        return Sequence(name=str(self._names[i]), residues=self.residues(i))

    def __iter__(self) -> Iterator[Sequence]:
        for i in range(len(self)):
            yield self.record(i)

    def __getitem__(self, index: int | slice | np.ndarray) -> "SequenceSet | Sequence":
        if isinstance(index, (int, np.integer)):
            return self.record(int(index))
        if isinstance(index, slice):
            idx = np.arange(len(self))[index]
        else:
            idx = np.asarray(index)
            if idx.dtype == bool:
                idx = np.flatnonzero(idx)
        return self.subset(idx)

    def subset(self, indices: np.ndarray) -> "SequenceSet":
        """Return a new set containing the given sequence indices (in order)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self)):
            raise IndexError("subset index out of range")
        lengths = self.lengths[indices]
        offsets = np.zeros(indices.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        data = np.empty(int(offsets[-1]), dtype=np.uint8)
        src_off = self._offsets
        for out_pos, i in enumerate(indices):
            data[offsets[out_pos] : offsets[out_pos + 1]] = self._data[
                src_off[i] : src_off[i + 1]
            ]
        return SequenceSet(data, offsets, self._names[indices], self._alphabet)

    def reencode(self, alphabet: Alphabet) -> "SequenceSet":
        """Re-encode the whole set into another (typically reduced) alphabet."""
        data = self._alphabet.project(alphabet, self._data)
        return SequenceSet(data, self._offsets.copy(), self._names.copy(), alphabet)

    # ------------------------------------------------------------ statistics
    def length_statistics(self) -> dict[str, float]:
        """Summary statistics of sequence lengths (used in run reports)."""
        lengths = self.lengths
        if lengths.size == 0:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0, "total": 0.0}
        return {
            "count": int(lengths.size),
            "min": float(lengths.min()),
            "max": float(lengths.max()),
            "mean": float(lengths.mean()),
            "median": float(np.median(lengths)),
            "total": float(lengths.sum()),
        }

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the packed representation."""
        return int(self._data.nbytes + self._offsets.nbytes)

    # ------------------------------------------------------------ helpers
    def _check_index(self, index: int) -> int:
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"sequence index {index} out of range for {n} sequences")
        return index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SequenceSet(n={len(self)}, residues={self.total_residues}, "
            f"alphabet={self._alphabet.name!r})"
        )
