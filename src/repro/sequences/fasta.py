"""FASTA input/output.

PASTIS reads FASTA with parallel MPI-IO; here we provide a plain reader plus
:func:`read_fasta_partitioned`, which splits the file into byte ranges per
virtual rank and lets each rank parse only its share — the same access
pattern MPI-IO based parallel FASTA readers use (each rank seeks to its
offset and scans forward to the next record boundary).
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from .alphabet import Alphabet, PROTEIN
from .sequence import SequenceSet


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: header (without ``>``) and residue string."""

    header: str
    sequence: str

    @property
    def name(self) -> str:
        """First whitespace-delimited token of the header."""
        return self.header.split()[0] if self.header else ""


def iter_fasta(handle: io.TextIOBase) -> Iterator[FastaRecord]:
    """Yield :class:`FastaRecord` objects from an open text handle."""
    header: str | None = None
    chunks: list[str] = []
    for raw in handle:
        line = raw.rstrip("\n\r")
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield FastaRecord(header=header, sequence="".join(chunks))
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError("FASTA content before first header line")
            chunks.append(line.strip())
    if header is not None:
        yield FastaRecord(header=header, sequence="".join(chunks))


def read_fasta(path: str | os.PathLike, alphabet: Alphabet = PROTEIN) -> SequenceSet:
    """Read a FASTA file into a :class:`SequenceSet`."""
    path = Path(path)
    with path.open("r") as handle:
        records = list(iter_fasta(handle))
    return SequenceSet.from_strings(
        (r.sequence for r in records), (r.name for r in records), alphabet
    )


def write_fasta(
    path: str | os.PathLike,
    sequences: SequenceSet | Iterable[FastaRecord],
    line_width: int = 60,
) -> int:
    """Write sequences to a FASTA file.  Returns the number of records written."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        if isinstance(sequences, SequenceSet):
            iterator: Iterable[FastaRecord] = (
                FastaRecord(header=str(rec.name), sequence=rec.residues) for rec in sequences
            )
        else:
            iterator = sequences
        for record in iterator:
            handle.write(f">{record.header}\n")
            seq = record.sequence
            for start in range(0, len(seq), line_width):
                handle.write(seq[start : start + line_width] + "\n")
            count += 1
    return count


def _partition_boundaries(size: int, nparts: int) -> list[tuple[int, int]]:
    """Split ``size`` bytes into ``nparts`` contiguous byte ranges."""
    if nparts <= 0:
        raise ValueError("nparts must be positive")
    step = size // nparts
    bounds = []
    for p in range(nparts):
        start = p * step
        stop = size if p == nparts - 1 else (p + 1) * step
        bounds.append((start, stop))
    return bounds


def read_fasta_partitioned(
    path: str | os.PathLike,
    nparts: int,
    alphabet: Alphabet = PROTEIN,
) -> list[SequenceSet]:
    """Read a FASTA file as ``nparts`` disjoint partitions.

    Mirrors the parallel MPI-IO reading strategy: each partition owns a byte
    range; a record belongs to the partition in which its ``>`` header byte
    falls.  The union of all partitions is exactly the full file, with no
    duplicates.
    """
    path = Path(path)
    raw = path.read_bytes()
    size = len(raw)
    bounds = _partition_boundaries(size, nparts)

    def record_start_positions() -> list[int]:
        positions = []
        pos = raw.find(b">")
        while pos != -1:
            # a record header must be at the beginning of a line
            if pos == 0 or raw[pos - 1 : pos] == b"\n":
                positions.append(pos)
            pos = raw.find(b">", pos + 1)
        return positions

    starts = record_start_positions()
    starts.append(size)
    partitions: list[list[FastaRecord]] = [[] for _ in range(nparts)]
    for idx in range(len(starts) - 1):
        rec_start, rec_stop = starts[idx], starts[idx + 1]
        text = raw[rec_start:rec_stop].decode("ascii")
        record = next(iter_fasta(io.StringIO(text)))
        for p, (lo, hi) in enumerate(bounds):
            if lo <= rec_start < hi:
                partitions[p].append(record)
                break
    return [
        SequenceSet.from_strings((r.sequence for r in part), (r.name for r in part), alphabet)
        for part in partitions
    ]
