"""Sequence-length distributions for synthetic data generation.

Metagenomic protein catalogs (e.g. Metaclust, the paper's 405M-sequence
dataset) have a long-tailed length distribution: many short ORF fragments and
a tail of long proteins.  The variability of sequence lengths is explicitly
called out by the paper as one of the things that make load balancing hard,
so the synthetic generator must reproduce it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LengthDistribution:
    """A log-normal-with-floor sequence length distribution.

    ``length = max(min_length, round(lognormal(mean, sigma)))`` truncated at
    ``max_length``.
    """

    log_mean: float = 5.0   # exp(5.0) ~ 148 residues, typical protein fragment
    log_sigma: float = 0.45
    min_length: int = 30
    max_length: int = 2000

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` lengths."""
        raw = rng.lognormal(mean=self.log_mean, sigma=self.log_sigma, size=n)
        lengths = np.clip(np.round(raw).astype(np.int64), self.min_length, self.max_length)
        return lengths

    def mean_length(self) -> float:
        """Analytic mean of the underlying log-normal (before clipping)."""
        return float(np.exp(self.log_mean + self.log_sigma**2 / 2.0))


def metagenome_length_distribution() -> LengthDistribution:
    """Default distribution mimicking assembled metagenomic protein fragments."""
    return LengthDistribution(log_mean=5.0, log_sigma=0.45, min_length=30, max_length=2000)


def uniform_length_distribution(low: int, high: int) -> LengthDistribution:
    """A nearly-uniform distribution, handy for controlled unit tests."""
    mid = float(np.log((low + high) / 2.0))
    return LengthDistribution(log_mean=mid, log_sigma=0.10, min_length=low, max_length=high)
