"""Synthetic metagenome-like protein dataset generator.

The paper evaluates on subsets of Metaclust (up to 405 million sequences
assembled from >2000 metagenomes).  That data is tens of terabytes and not
available here, so we generate a *family-structured* synthetic surrogate that
preserves the properties the PASTIS algorithms actually depend on:

* **Homologous families.**  Sequences are generated as mutated copies of a
  family ancestor, so members of a family share many exact k-mers (they will
  be discovered as candidates and pass the ANI/coverage filters), while
  members of different families share k-mers only by chance (candidates that
  fail the filters).  This reproduces the paper's observation that "typically
  only less than 5% of the candidate pairs end up in the final similarity
  graph".
* **Singleton background.**  A configurable fraction of sequences belong to
  no family (random sequences), mimicking the unclustered tail of metagenome
  catalogs.
* **Long-tailed length distribution** (see
  :mod:`repro.sequences.distribution`), the source of alignment load
  imbalance studied in Fig. 7.

The generator is deterministic given a seed, so experiments are repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import Alphabet, PROTEIN
from .distribution import LengthDistribution, metagenome_length_distribution
from .sequence import SequenceSet

#: Background amino-acid frequencies (approximate UniProt composition),
#: indexed in the order of :data:`repro.sequences.alphabet.AMINO_ACIDS`.
BACKGROUND_FREQUENCIES = np.array(
    [
        0.0825,  # A
        0.0553,  # R
        0.0406,  # N
        0.0546,  # D
        0.0137,  # C
        0.0393,  # Q
        0.0675,  # E
        0.0707,  # G
        0.0227,  # H
        0.0596,  # I
        0.0966,  # L
        0.0584,  # K
        0.0242,  # M
        0.0386,  # F
        0.0470,  # P
        0.0656,  # S
        0.0534,  # T
        0.0108,  # W
        0.0292,  # Y
        0.0687,  # V
    ]
)
BACKGROUND_FREQUENCIES = BACKGROUND_FREQUENCIES / BACKGROUND_FREQUENCIES.sum()


@dataclass
class SyntheticDatasetConfig:
    """Configuration of the synthetic metagenome generator.

    Attributes
    ----------
    n_sequences:
        Total number of sequences to generate.
    family_fraction:
        Fraction of sequences that belong to a homologous family (the rest
        are singletons).
    mean_family_size:
        Expected number of members per family (geometric-ish distribution).
    mutation_rate:
        Per-residue substitution probability applied to family members
        relative to their ancestor (controls within-family identity).
    indel_rate:
        Per-residue insertion/deletion probability for family members
        (controls coverage and length divergence).
    fragment_probability:
        Probability that a family member is a fragment (prefix/suffix/middle
        slice of the ancestor), as happens with partially assembled ORFs.
    length_distribution:
        Ancestor/singleton length distribution.
    seed:
        RNG seed.
    """

    n_sequences: int = 1000
    family_fraction: float = 0.7
    mean_family_size: float = 6.0
    mutation_rate: float = 0.10
    indel_rate: float = 0.01
    fragment_probability: float = 0.15
    length_distribution: LengthDistribution = field(
        default_factory=metagenome_length_distribution
    )
    seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.n_sequences <= 0:
            raise ValueError("n_sequences must be positive")
        if not 0.0 <= self.family_fraction <= 1.0:
            raise ValueError("family_fraction must be in [0, 1]")
        if self.mean_family_size < 1.0:
            raise ValueError("mean_family_size must be >= 1")
        if not 0.0 <= self.mutation_rate < 1.0:
            raise ValueError("mutation_rate must be in [0, 1)")
        if not 0.0 <= self.indel_rate < 0.5:
            raise ValueError("indel_rate must be in [0, 0.5)")
        if not 0.0 <= self.fragment_probability <= 1.0:
            raise ValueError("fragment_probability must be in [0, 1]")


def _random_codes(length: int, rng: np.random.Generator, alphabet: Alphabet) -> np.ndarray:
    """Draw a random protein of ``length`` residues from background frequencies."""
    if alphabet.size == len(BACKGROUND_FREQUENCIES):
        probs = BACKGROUND_FREQUENCIES
    else:  # reduced alphabets: uniform
        probs = np.full(alphabet.size, 1.0 / alphabet.size)
    return rng.choice(alphabet.size, size=length, p=probs).astype(np.uint8)


def _mutate(
    ancestor: np.ndarray,
    rng: np.random.Generator,
    alphabet: Alphabet,
    mutation_rate: float,
    indel_rate: float,
) -> np.ndarray:
    """Apply point substitutions and short indels to an ancestor sequence."""
    codes = ancestor.copy()
    # substitutions
    mask = rng.random(codes.size) < mutation_rate
    if mask.any():
        codes[mask] = rng.integers(0, alphabet.size, size=int(mask.sum()), dtype=np.int64).astype(
            np.uint8
        )
    # deletions
    if indel_rate > 0:
        keep = rng.random(codes.size) >= indel_rate / 2.0
        codes = codes[keep]
        # insertions
        n_insert = rng.binomial(max(codes.size, 1), indel_rate / 2.0)
        if n_insert > 0 and codes.size > 0:
            positions = np.sort(rng.integers(0, codes.size + 1, size=n_insert))
            inserts = _random_codes(n_insert, rng, alphabet)
            codes = np.insert(codes, positions, inserts)
    return codes


def _fragment(codes: np.ndarray, rng: np.random.Generator, min_length: int) -> np.ndarray:
    """Take a random contiguous fragment covering 40-90% of the sequence."""
    n = codes.size
    if n <= min_length:
        return codes
    frac = rng.uniform(0.4, 0.9)
    length = max(min_length, int(round(frac * n)))
    start = rng.integers(0, n - length + 1)
    return codes[start : start + length]


def make_family(
    size: int,
    config: SyntheticDatasetConfig,
    rng: np.random.Generator,
    alphabet: Alphabet = PROTEIN,
    family_id: int = 0,
) -> tuple[list[np.ndarray], list[str]]:
    """Generate one homologous family of ``size`` members.

    Returns packed code arrays and names ``fam{family_id}_m{member}``.
    """
    ancestor_length = int(config.length_distribution.sample(1, rng)[0])
    ancestor = _random_codes(ancestor_length, rng, alphabet)
    members: list[np.ndarray] = []
    names: list[str] = []
    for member in range(size):
        codes = _mutate(ancestor, rng, alphabet, config.mutation_rate, config.indel_rate)
        if rng.random() < config.fragment_probability:
            codes = _fragment(codes, rng, config.length_distribution.min_length)
        members.append(codes)
        names.append(f"fam{family_id}_m{member}")
    return members, names


def synthetic_dataset(
    n_sequences: int | None = None,
    config: SyntheticDatasetConfig | None = None,
    alphabet: Alphabet = PROTEIN,
    seed: int | None = None,
) -> SequenceSet:
    """Generate a synthetic metagenome-like :class:`SequenceSet`.

    Either pass a full :class:`SyntheticDatasetConfig`, or just
    ``n_sequences`` (and optionally ``seed``) to use defaults.
    """
    if config is None:
        config = SyntheticDatasetConfig()
    if n_sequences is not None:
        config = SyntheticDatasetConfig(
            n_sequences=n_sequences,
            family_fraction=config.family_fraction,
            mean_family_size=config.mean_family_size,
            mutation_rate=config.mutation_rate,
            indel_rate=config.indel_rate,
            fragment_probability=config.fragment_probability,
            length_distribution=config.length_distribution,
            seed=config.seed if seed is None else seed,
        )
    elif seed is not None:
        config = SyntheticDatasetConfig(
            n_sequences=config.n_sequences,
            family_fraction=config.family_fraction,
            mean_family_size=config.mean_family_size,
            mutation_rate=config.mutation_rate,
            indel_rate=config.indel_rate,
            fragment_probability=config.fragment_probability,
            length_distribution=config.length_distribution,
            seed=seed,
        )
    config.validate()
    rng = np.random.default_rng(config.seed)

    n_family_sequences = int(round(config.n_sequences * config.family_fraction))
    n_singletons = config.n_sequences - n_family_sequences

    all_codes: list[np.ndarray] = []
    all_names: list[str] = []

    family_id = 0
    generated = 0
    while generated < n_family_sequences:
        # family sizes ~ 2 + geometric, truncated to remaining budget
        size = 2 + int(rng.geometric(1.0 / max(config.mean_family_size - 1.0, 1.0)))
        size = min(size, n_family_sequences - generated)
        if size < 1:
            break
        members, names = make_family(size, config, rng, alphabet, family_id)
        all_codes.extend(members)
        all_names.extend(names)
        generated += size
        family_id += 1

    singleton_lengths = config.length_distribution.sample(n_singletons, rng)
    for i in range(n_singletons):
        all_codes.append(_random_codes(int(singleton_lengths[i]), rng, alphabet))
        all_names.append(f"single{i}")

    # shuffle so that family members are not adjacent (as in real catalogs)
    order = rng.permutation(len(all_codes))
    lengths = np.fromiter((all_codes[i].size for i in order), dtype=np.int64, count=order.size)
    offsets = np.zeros(order.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    data = np.empty(int(offsets[-1]), dtype=np.uint8)
    names_out = []
    for out_pos, i in enumerate(order):
        data[offsets[out_pos] : offsets[out_pos + 1]] = all_codes[i]
        names_out.append(all_names[i])
    return SequenceSet(data, offsets, names_out, alphabet)


def family_labels(sequences: SequenceSet) -> np.ndarray:
    """Recover family ids from names produced by :func:`synthetic_dataset`.

    Singletons get a unique negative label each.  Useful for sensitivity /
    recall style analyses of the search output.
    """
    labels = np.empty(len(sequences), dtype=np.int64)
    next_singleton = -1
    for i, name in enumerate(sequences.names):
        name = str(name)
        if name.startswith("fam"):
            labels[i] = int(name[3:].split("_")[0])
        else:
            labels[i] = next_singleton
            next_singleton -= 1
    return labels
