"""k-mer extraction, encoding, and substitute (nearest-neighbour) k-mers.

The sequence-by-k-mer matrix ``A`` that drives overlap detection in PASTIS is
built from the k-mers extracted here.  Each k-mer is encoded as an integer in
base ``|alphabet|`` so that it can serve directly as a column index of the
sparse matrix (the paper's production run uses k = 6 over the 20-letter
alphabet, hence 20^6 ≈ 64 M columns — matching the "244,140,625" columns in
Table IV which corresponds to 25^6 including ambiguity codes; we use the
exact alphabet size).

*Substitute k-mers* are the paper's sensitivity enhancer: for each exact
k-mer, the ``m`` nearest neighbours under a substitution-score metric are also
inserted into ``A``, so that two sequences sharing only a near-identical (not
exact) k-mer still become a candidate pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .alphabet import Alphabet, PROTEIN
from .sequence import SequenceSet


def kmer_space_size(alphabet: Alphabet, k: int) -> int:
    """Number of possible k-mers (columns of the sequence-by-k-mer matrix)."""
    return int(alphabet.size) ** int(k)


def encode_kmers(codes: np.ndarray, k: int, alphabet_size: int) -> np.ndarray:
    """Encode all overlapping k-mers of a code array into integer ids.

    Parameters
    ----------
    codes:
        ``uint8`` residue codes of one sequence.
    k:
        k-mer length.
    alphabet_size:
        Radix of the encoding.

    Returns
    -------
    ``int64`` array of length ``max(0, len(codes) - k + 1)``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.size
    if n < k:
        return np.empty(0, dtype=np.int64)
    weights = alphabet_size ** np.arange(k - 1, -1, -1, dtype=np.int64)
    # sliding_window_view gives an (n-k+1, k) view with zero copies.
    windows = np.lib.stride_tricks.sliding_window_view(codes, k)
    return windows @ weights


def decode_kmer(kmer_id: int, k: int, alphabet: Alphabet = PROTEIN) -> str:
    """Decode an integer k-mer id back to its residue string."""
    digits = np.empty(k, dtype=np.uint8)
    value = int(kmer_id)
    for pos in range(k - 1, -1, -1):
        digits[pos] = value % alphabet.size
        value //= alphabet.size
    return alphabet.decode(digits)


@dataclass
class KmerExtractor:
    """Extract (sequence, k-mer, position) triples from a :class:`SequenceSet`.

    Attributes
    ----------
    k:
        k-mer length.
    alphabet:
        Alphabet to extract on.  When it differs from the sequences' own
        alphabet the sequences are projected first (reduced-alphabet seeding).
    max_kmer_frequency:
        Optional cap: k-mers occurring in more than this many *positions*
        across the dataset are discarded as low-complexity / uninformative
        seeds (all real tools do this; it also bounds the SpGEMM output).
    """

    k: int = 6
    alphabet: Alphabet = field(default_factory=lambda: PROTEIN)
    max_kmer_frequency: int | None = None

    def extract(
        self, sequences: SequenceSet
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(seq_ids, kmer_ids, positions)`` arrays.

        One entry per k-mer occurrence.  ``positions`` is the 0-based offset
        of the k-mer within its sequence (the "seed location" the overlap
        matrix elements carry).
        """
        if sequences.alphabet.name != self.alphabet.name:
            sequences = sequences.reencode(self.alphabet)
        lengths = sequences.lengths
        counts = np.maximum(lengths - self.k + 1, 0)
        total = int(counts.sum())
        seq_ids = np.empty(total, dtype=np.int64)
        kmer_ids = np.empty(total, dtype=np.int64)
        positions = np.empty(total, dtype=np.int32)
        cursor = 0
        asize = self.alphabet.size
        for i in range(len(sequences)):
            c = int(counts[i])
            if c == 0:
                continue
            codes = sequences.codes(i)
            ids = encode_kmers(codes, self.k, asize)
            seq_ids[cursor : cursor + c] = i
            kmer_ids[cursor : cursor + c] = ids
            positions[cursor : cursor + c] = np.arange(c, dtype=np.int32)
            cursor += c
        seq_ids = seq_ids[:cursor]
        kmer_ids = kmer_ids[:cursor]
        positions = positions[:cursor]
        if self.max_kmer_frequency is not None:
            seq_ids, kmer_ids, positions = self._filter_frequent(
                seq_ids, kmer_ids, positions
            )
        return seq_ids, kmer_ids, positions

    def _filter_frequent(
        self, seq_ids: np.ndarray, kmer_ids: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Drop occurrences of k-mers more frequent than ``max_kmer_frequency``."""
        unique, inverse, freq = np.unique(kmer_ids, return_inverse=True, return_counts=True)
        keep = freq[inverse] <= self.max_kmer_frequency
        return seq_ids[keep], kmer_ids[keep], positions[keep]

    def space_size(self) -> int:
        """Size of the k-mer space (number of matrix columns)."""
        return kmer_space_size(self.alphabet, self.k)


def substitute_kmers(
    kmer_ids: np.ndarray,
    k: int,
    alphabet: Alphabet,
    substitution_scores: np.ndarray,
    num_neighbors: int = 1,
    min_score_fraction: float = 0.8,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate substitute (near-neighbour) k-mers for each input k-mer.

    For each input k-mer, up to ``num_neighbors`` additional k-mers are
    produced by substituting a single residue with its best-scoring partner
    under ``substitution_scores`` (e.g. BLOSUM62), provided the resulting
    k-mer keeps at least ``min_score_fraction`` of the original self-score.
    This mirrors PASTIS's m-nearest-neighbour substitute k-mer option.

    Returns
    -------
    (source_index, neighbor_kmer_id):
        ``source_index[i]`` is the position in ``kmer_ids`` whose neighbour is
        ``neighbor_kmer_id[i]``.  Exact duplicates of the original k-mer are
        never emitted.
    """
    kmer_ids = np.asarray(kmer_ids, dtype=np.int64)
    asize = alphabet.size
    scores = np.asarray(substitution_scores, dtype=np.float64)
    if scores.shape != (asize, asize):
        raise ValueError("substitution_scores shape must match alphabet size")

    # best substitution partner (excluding self) for each residue code
    partner_scores = scores.copy()
    np.fill_diagonal(partner_scores, -np.inf)
    best_partner = partner_scores.argmax(axis=1)
    gain = partner_scores[np.arange(asize), best_partner]  # score of best swap
    self_score = np.diag(scores)

    # decompose k-mer ids into digit matrix (n, k)
    n = kmer_ids.size
    digits = np.empty((n, k), dtype=np.int64)
    value = kmer_ids.copy()
    for pos in range(k - 1, -1, -1):
        digits[:, pos] = value % asize
        value //= asize
    weights = asize ** np.arange(k - 1, -1, -1, dtype=np.int64)
    base_self = self_score[digits].sum(axis=1)

    sources: list[np.ndarray] = []
    neighbors: list[np.ndarray] = []
    # candidate single-substitution neighbours ranked by score loss
    loss = self_score[digits] - gain[digits]  # (n, k) loss of substituting each position
    order = np.argsort(loss, axis=1)
    for rank in range(min(num_neighbors, k)):
        pos = order[:, rank]
        rows = np.arange(n)
        new_score = base_self - loss[rows, pos]
        ok = new_score >= min_score_fraction * base_self
        if not ok.any():
            continue
        rows_ok = rows[ok]
        pos_ok = pos[ok]
        old_digit = digits[rows_ok, pos_ok]
        new_digit = best_partner[old_digit]
        changed = new_digit != old_digit
        rows_ok = rows_ok[changed]
        pos_ok = pos_ok[changed]
        new_digit = new_digit[changed]
        old_digit = old_digit[changed]
        new_ids = kmer_ids[rows_ok] + (new_digit - old_digit) * weights[pos_ok]
        sources.append(rows_ok)
        neighbors.append(new_ids)
    if not sources:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(sources), np.concatenate(neighbors)
