"""Protein alphabets, including reduced alphabets for sensitive seeding.

PASTIS optionally plugs in a reduced alphabet (Murphy et al. 2000) when
extracting k-mers: collapsing similar amino acids into one symbol makes
k-mer seeds match across more-diverged homologs, increasing sensitivity at
the cost of more candidate pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Canonical 20 amino-acid letters in a fixed order.
AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"

#: Characters tolerated in input but mapped onto a canonical residue.
AMBIGUOUS_MAP = {
    "B": "D",  # Asx -> Asp
    "Z": "E",  # Glx -> Glu
    "J": "L",  # Xle -> Leu
    "U": "C",  # selenocysteine -> Cys
    "O": "K",  # pyrrolysine -> Lys
    "X": "A",  # unknown -> Ala (arbitrary but deterministic)
    "*": "A",  # stop codons occasionally appear in translated ORFs
}

#: Murphy 10-letter reduced alphabet groups (Murphy, Wallqvist, Levy 2000).
MURPHY10_GROUPS = [
    "LVIM",
    "C",
    "A",
    "G",
    "ST",
    "P",
    "FYW",
    "EDNQ",
    "KR",
    "H",
]

#: Dayhoff 6-letter reduced alphabet groups.
DAYHOFF6_GROUPS = [
    "AGPST",
    "C",
    "DENQ",
    "FWY",
    "HKR",
    "ILMV",
]


@dataclass(frozen=True)
class Alphabet:
    """A (possibly reduced) residue alphabet.

    Parameters
    ----------
    name:
        Human-readable name.
    letters:
        One representative character per symbol class, in code order.
    groups:
        For reduced alphabets, the groups of canonical amino acids mapped
        onto each symbol.  For the full protein alphabet each group is a
        single letter.
    """

    name: str
    letters: str
    groups: tuple[str, ...]
    _lut: np.ndarray = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:  # build the char -> code lookup table
        lut = np.full(256, -1, dtype=np.int16)
        for code, group in enumerate(self.groups):
            for ch in group:
                lut[ord(ch)] = code
                lut[ord(ch.lower())] = code
        # Ambiguity codes map through their canonical residue.
        for ambig, canon in AMBIGUOUS_MAP.items():
            code = lut[ord(canon)]
            lut[ord(ambig)] = code
            lut[ord(ambig.lower())] = code
        object.__setattr__(self, "_lut", lut)

    # ------------------------------------------------------------------ API
    @property
    def size(self) -> int:
        """Number of distinct symbol codes."""
        return len(self.groups)

    def encode(self, text: str) -> np.ndarray:
        """Encode a residue string into ``uint8`` codes.

        Unknown characters raise ``ValueError`` so that corrupt input is not
        silently folded into the search.
        """
        raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
        codes = self._lut[raw]
        if (codes < 0).any():
            bad = sorted({chr(c) for c in raw[codes < 0]})
            raise ValueError(f"unknown residue characters {bad!r} for alphabet {self.name}")
        return codes.astype(np.uint8)

    def decode(self, codes: np.ndarray) -> str:
        """Decode ``uint8`` codes back into the representative letters."""
        codes = np.asarray(codes, dtype=np.uint8)
        if codes.size and int(codes.max()) >= self.size:
            raise ValueError("code out of range for alphabet")
        letters = np.frombuffer(self.letters.encode("ascii"), dtype=np.uint8)
        return letters[codes].tobytes().decode("ascii")

    def project(self, other: "Alphabet", codes: np.ndarray) -> np.ndarray:
        """Re-encode codes of this alphabet into another (reduced) alphabet.

        Used when seeding is performed on a reduced alphabet but alignment on
        the full alphabet.
        """
        table = np.empty(self.size, dtype=np.uint8)
        for code, group in enumerate(self.groups):
            table[code] = other.encode(group[0])[0]
        return table[np.asarray(codes, dtype=np.uint8)]

    def __len__(self) -> int:
        return self.size


def _full_protein_alphabet() -> Alphabet:
    return Alphabet(
        name="protein20",
        letters=AMINO_ACIDS,
        groups=tuple(AMINO_ACIDS),
    )


def reduced_alphabet(name: str, groups: list[str]) -> Alphabet:
    """Build a reduced alphabet from groups of canonical amino acids.

    Every canonical amino acid must appear in exactly one group.
    """
    seen: set[str] = set()
    for group in groups:
        for ch in group:
            if ch in seen:
                raise ValueError(f"residue {ch!r} appears in more than one group")
            seen.add(ch)
    missing = set(AMINO_ACIDS) - seen
    if missing:
        raise ValueError(f"groups do not cover residues {sorted(missing)!r}")
    letters = "".join(group[0] for group in groups)
    return Alphabet(name=name, letters=letters, groups=tuple(groups))


#: The standard 20-letter protein alphabet.
PROTEIN = _full_protein_alphabet()

#: Murphy 10-letter reduced alphabet.
MURPHY10 = reduced_alphabet("murphy10", MURPHY10_GROUPS)

#: Dayhoff 6-letter reduced alphabet.
DAYHOFF6 = reduced_alphabet("dayhoff6", DAYHOFF6_GROUPS)
