"""Simulated MPI runtime: virtual ranks, collectives, and cost accounting.

The paper runs PASTIS as one MPI rank per Summit node (3364 ranks at full
scale).  This reproduction has no MPI and no Summit, so the distributed
algorithms run on a *simulated* SPMD runtime:

* each virtual rank owns its local data (lists indexed by rank, managed by
  the distributed-matrix layer);
* collectives (:mod:`repro.mpi.collectives`) move data between the rank-local
  stores and charge every participating rank the alpha-beta cost of the
  operation (tree broadcast, ring allgather, pairwise all-to-all), using the
  network model of :mod:`repro.hardware.topology`;
* local computation is executed for real (NumPy) and its wall time — or a
  hardware-model time for GPU work — is charged to the owning rank through
  the :class:`repro.mpi.costmodel.CostLedger`;
* the per-rank ledger then yields exactly the quantities the paper reports:
  component time breakdowns, min/avg/max load imbalance, communication-wait
  and IO percentages, and strong/weak scaling efficiencies.

The result of a distributed computation is *identical* to the serial one (the
data really is partitioned, broadcast and multiplied per rank); only the
clock is modelled.  An optional thread pool executes per-rank work
concurrently for real speedups at small rank counts.
"""

from .costmodel import CostLedger, TimeBreakdown
from .process_grid import ProcessGrid
from .communicator import SimCommunicator
from .collectives import CollectiveEngine
from .executor import SpmdExecutor
from .io import ParallelIoModel

__all__ = [
    "CostLedger",
    "TimeBreakdown",
    "ProcessGrid",
    "SimCommunicator",
    "CollectiveEngine",
    "SpmdExecutor",
    "ParallelIoModel",
]
