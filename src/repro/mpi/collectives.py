"""Simulated collective operations with alpha-beta cost accounting.

Each collective takes data already laid out per rank (plain Python lists
indexed by rank), produces the post-collective per-rank layout, and charges
every participating rank the modelled time of the operation:

* ``bcast`` — binomial tree: ``ceil(log2 p) * (alpha + beta*s)``, the term
  appearing in the paper's SUMMA cost analysis (§VI-A);
* ``allgather`` — ring: ``(p-1) * (alpha + beta*s_per_rank)``;
* ``alltoallv`` — pairwise exchange;
* ``reduce`` / ``allreduce`` — tree reduction;
* ``point_to_point`` — a single message (used by the nonblocking sequence
  exchange, whose *wait* time is what Table II reports).

Message sizes are taken from the actual NumPy payloads being moved (via
:func:`payload_nbytes`), so cost scales with the real data volume of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from ..hardware.topology import NetworkSpec
from .costmodel import CostLedger


def payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a payload (ndarray, COO matrix, list, ...)."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if hasattr(payload, "memory_bytes"):
        return int(payload.memory_bytes())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload)
    return 64  # opaque object: charge a nominal constant


@dataclass
class CollectiveEngine:
    """Executes simulated collectives and charges their cost to a ledger.

    ``comm_category`` is the ledger time category the operations charge;
    ``counter_prefix`` namespaces the byte counters (``bytes_sent`` /
    ``bytes_received``), so a subsystem running on a shared ledger — e.g.
    the distributed Markov clustering stage, whose traffic must stay
    separable from the search's — can account its volume under its own
    counters (``cluster_bytes_sent``, ...) without touching the search's.
    """

    network: NetworkSpec
    ledger: CostLedger
    comm_category: str = "comm"
    counter_prefix: str = ""

    def _count(self, rank: int, counter: str, amount: float) -> None:
        self.ledger.count(rank, self.counter_prefix + counter, amount)

    # ------------------------------------------------------------------ collectives
    def bcast(self, data: Any, root: int, participants: Sequence[int]) -> dict[int, Any]:
        """Broadcast ``data`` from ``root`` to all ``participants``.

        Returns a dict rank -> payload (the root keeps its original object;
        receivers get the same object — the simulator does not deep-copy, the
        distributed-matrix layer treats received payloads as read-only).
        """
        participants = list(participants)
        if root not in participants:
            raise ValueError("root must be among the participants")
        nbytes = payload_nbytes(data)
        seconds = self.network.tree_broadcast_seconds(nbytes, len(participants))
        for rank in participants:
            self.ledger.charge(rank, self.comm_category, seconds)
            self._count(rank, "bytes_received", 0 if rank == root else nbytes)
        self._count(root, "bytes_sent", nbytes * max(len(participants) - 1, 0))
        return {rank: data for rank in participants}

    def allgather(self, per_rank_data: dict[int, Any]) -> dict[int, list[Any]]:
        """Every participant receives the list of all participants' payloads."""
        participants = sorted(per_rank_data.keys())
        sizes = [payload_nbytes(per_rank_data[r]) for r in participants]
        avg_size = int(np.mean(sizes)) if sizes else 0
        seconds = self.network.allgather_seconds(avg_size, len(participants))
        gathered = [per_rank_data[r] for r in participants]
        for rank, size in zip(participants, sizes):
            self.ledger.charge(rank, self.comm_category, seconds)
            self._count(rank, "bytes_sent", size * max(len(participants) - 1, 0))
            self._count(rank, "bytes_received", int(np.sum(sizes)) - size)
        return {rank: list(gathered) for rank in participants}

    def alltoallv(self, send_matrix: dict[int, dict[int, Any]]) -> dict[int, dict[int, Any]]:
        """Personalized all-to-all.

        ``send_matrix[src][dst]`` is the payload rank ``src`` sends to rank
        ``dst``.  Returns ``recv[dst][src]``.
        """
        participants = sorted(send_matrix.keys())
        recv: dict[int, dict[int, Any]] = {r: {} for r in participants}
        bytes_sent = {r: 0 for r in participants}
        for src in participants:
            for dst, payload in send_matrix[src].items():
                if dst not in recv:
                    recv[dst] = {}
                recv[dst][src] = payload
                bytes_sent[src] += payload_nbytes(payload)
        for rank in participants:
            seconds = self.network.alltoallv_seconds(bytes_sent[rank], len(participants))
            self.ledger.charge(rank, self.comm_category, seconds)
            self._count(rank, "bytes_sent", bytes_sent[rank])
        return recv

    def reduce(
        self,
        per_rank_data: dict[int, Any],
        op: Callable[[Any, Any], Any],
        root: int,
    ) -> Any:
        """Tree reduction of per-rank payloads onto ``root``."""
        participants = sorted(per_rank_data.keys())
        if root not in participants:
            raise ValueError("root must be among the participants")
        sizes = [payload_nbytes(per_rank_data[r]) for r in participants]
        avg_size = int(np.mean(sizes)) if sizes else 0
        seconds = self.network.tree_broadcast_seconds(avg_size, len(participants))
        for rank in participants:
            self.ledger.charge(rank, self.comm_category, seconds)
        result = None
        for rank in participants:
            payload = per_rank_data[rank]
            result = payload if result is None else op(result, payload)
        return result

    def allreduce(self, per_rank_data: dict[int, Any], op: Callable[[Any, Any], Any]) -> dict[int, Any]:
        """Reduce-then-broadcast allreduce."""
        participants = sorted(per_rank_data.keys())
        root = participants[0]
        result = self.reduce(per_rank_data, op, root)
        return self.bcast(result, root, participants)

    def point_to_point(
        self, data: Any, src: int, dst: int, category: str | None = None
    ) -> Any:
        """A single message from ``src`` to ``dst``."""
        nbytes = payload_nbytes(data)
        seconds = self.network.point_to_point_seconds(nbytes)
        cat = category or self.comm_category
        self.ledger.charge(src, cat, seconds)
        self.ledger.charge(dst, cat, seconds)
        self._count(src, "bytes_sent", nbytes)
        self._count(dst, "bytes_received", nbytes)
        return data

    def barrier(self, participants: Sequence[int]) -> None:
        """Synchronization barrier (charged as one zero-byte tree broadcast)."""
        participants = list(participants)
        seconds = self.network.tree_broadcast_seconds(0, len(participants))
        for rank in participants:
            self.ledger.charge(rank, self.comm_category, seconds)
