"""Parallel I/O model.

PASTIS reads the FASTA input and writes the similarity-graph triplets with
parallel MPI-IO; the paper reports I/O to be at most ~3% of the runtime
(Table II) with the output file (27 TB at full scale) larger than the input.
This module models collective reads/writes against the cluster's parallel
file system and charges the time to every rank, so the I/O share of the total
runtime can be reproduced and reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.cluster import ClusterSpec
from .costmodel import CostLedger


@dataclass
class ParallelIoModel:
    """Models collective parallel file reads/writes.

    Parameters
    ----------
    cluster:
        Hardware model providing file-system bandwidth.
    ledger:
        Ledger charged under the ``io`` category.
    """

    cluster: ClusterSpec
    ledger: CostLedger

    def collective_read(self, total_bytes: int, category: str = "io") -> float:
        """Model a collective read of ``total_bytes`` spread over all ranks."""
        seconds = self.cluster.io_seconds(total_bytes, nodes_used=self.ledger.nranks)
        self.ledger.charge_all(category, seconds)
        self.ledger.count_all("bytes_read", total_bytes / self.ledger.nranks)
        return seconds

    def collective_write(self, total_bytes: int, category: str = "io") -> float:
        """Model a collective write of ``total_bytes`` spread over all ranks."""
        seconds = self.cluster.io_seconds(total_bytes, nodes_used=self.ledger.nranks)
        self.ledger.charge_all(category, seconds)
        self.ledger.count_all("bytes_written", total_bytes / self.ledger.nranks)
        return seconds

    @staticmethod
    def fasta_bytes(total_residues: int, n_sequences: int) -> int:
        """Approximate FASTA file size: residues plus headers/newlines."""
        return int(total_residues + 32 * n_sequences)

    @staticmethod
    def triples_bytes(n_edges: int) -> int:
        """Approximate similarity-graph output size (text triplets ~40 B/edge)."""
        return int(40 * n_edges)
