"""The simulated communicator: rank-local stores plus cost charging.

A :class:`SimCommunicator` is the handle the distributed algorithms program
against.  It bundles

* the number of virtual ranks and (optionally) the 2D process grid,
* the hardware model (node + network) used for cost accounting,
* the :class:`repro.mpi.costmodel.CostLedger` every operation charges into,
* and the collective engine that moves data between rank-local lists.

The communicator deliberately does **not** hide data behind per-rank address
spaces — algorithms keep their per-rank state in plain lists indexed by rank.
That keeps the SUMMA implementations short and auditable while still forcing
every inter-rank data movement through an accounted collective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.cluster import ClusterSpec, summit_subset
from .collectives import CollectiveEngine
from .costmodel import CostLedger
from .process_grid import ProcessGrid


@dataclass
class SimCommunicator:
    """A simulated MPI world of ``nranks`` virtual ranks.

    Parameters
    ----------
    nranks:
        Number of virtual ranks (one per simulated node, as in the paper).
    cluster:
        Hardware model used for communication/IO/alignment cost accounting.
        Defaults to a Summit allocation of ``nranks`` nodes.
    """

    nranks: int
    cluster: ClusterSpec | None = None
    ledger: CostLedger = field(init=False)
    grid: ProcessGrid | None = field(init=False, default=None)
    collectives: CollectiveEngine = field(init=False)

    def __post_init__(self) -> None:
        if self.nranks <= 0:
            raise ValueError("nranks must be positive")
        if self.cluster is None:
            self.cluster = summit_subset(self.nranks)
        self.ledger = CostLedger(self.nranks)
        self.collectives = CollectiveEngine(
            network=self.cluster.network, ledger=self.ledger
        )
        try:
            self.grid = ProcessGrid.from_nprocs(self.nranks)
        except ValueError:
            self.grid = None  # non-square worlds are allowed for non-SUMMA uses

    # ------------------------------------------------------------------ basics
    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.nranks

    def ranks(self) -> range:
        """Iterable over all rank ids."""
        return range(self.nranks)

    def require_grid(self) -> ProcessGrid:
        """Return the 2D grid, raising if the world size is not a perfect square."""
        if self.grid is None:
            raise ValueError(
                f"world size {self.nranks} is not a perfect square; no 2D grid available"
            )
        return self.grid

    # ------------------------------------------------------------------ cost charging
    def charge_compute(self, rank: int, category: str, seconds: float) -> None:
        """Charge local computation time to one rank."""
        self.ledger.charge(rank, category, seconds)

    def charge_compute_all(self, category: str, seconds_per_rank: np.ndarray | float) -> None:
        """Charge computation time to every rank."""
        self.ledger.charge_all(category, seconds_per_rank)

    def charge_io(self, total_bytes: int, category: str = "io") -> float:
        """Charge a collective parallel-IO operation; returns the modelled seconds."""
        seconds = self.cluster.io_seconds(total_bytes, nodes_used=self.nranks)
        self.ledger.charge_all(category, seconds)
        return seconds

    # ------------------------------------------------------------------ reporting
    def component_times(self) -> dict[str, float]:
        """Bulk-synchronous component times (max over ranks) per category."""
        return self.ledger.summary()

    def total_time(self) -> float:
        """Modelled total runtime."""
        return self.ledger.total_time()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grid = f", grid={self.grid.grid_dim}x{self.grid.grid_dim}" if self.grid else ""
        return f"SimCommunicator(nranks={self.nranks}{grid})"
