"""Per-rank cost accounting.

Every virtual rank accumulates time into named categories ("align",
"spgemm", "sparse_other", "comm", "cwait", "io", ...).  The paper's reported
metrics map directly onto this ledger:

* component time breakdowns (Fig. 5, Fig. 7d, Table I, Table IV) — the
  per-category maximum over ranks (bulk-synchronous execution finishes when
  the slowest rank does);
* load imbalance (Fig. 7a-c, Table IV "Imbalance %") — min/avg/max over
  ranks of a category or metric;
* communication-wait and IO percentages (Table II) — category time divided
  by total time.

Schedulers (see :mod:`repro.core.engine.schedulers`) own the charging of
the "align" and "spgemm" categories, possibly inflated by the §VI-C
contention multipliers.  The overlapped scheduler additionally charges the
seconds *hidden* by the discover/align overlap to the informational
"overlap_hidden" category (excluded from reported totals), which keeps the
ledger reconcilable with the simulated clock:
``align + spgemm - overlap_hidden == combined schedule time`` per rank.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TimeBreakdown:
    """Min/avg/max of a per-rank quantity, plus the paper's imbalance metric."""

    minimum: float
    average: float
    maximum: float

    @property
    def imbalance_percent(self) -> float:
        """Load imbalance as ``(max / avg - 1) * 100`` (0 for perfectly balanced)."""
        if self.average <= 0:
            return 0.0
        return (self.maximum / self.average - 1.0) * 100.0

    @classmethod
    def from_values(cls, values: np.ndarray | list[float]) -> "TimeBreakdown":
        """Build from a per-rank vector."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return cls(0.0, 0.0, 0.0)
        return cls(float(arr.min()), float(arr.mean()), float(arr.max()))


def charge_overlap_slot(
    ledger: "CostLedger",
    clock: np.ndarray,
    foreground: np.ndarray,
    background: np.ndarray,
    hidden_category: str,
) -> None:
    """Advance a per-rank simulated clock by one overlapped schedule slot.

    The slot co-schedules two stages — e.g. ``align(b)`` against
    ``discover(b+1)`` in the search engine, or ``prune(b)`` against
    ``expand(b+1)`` in the distributed Markov clustering — so each rank pays
    the *slower* of the two, and the seconds hidden behind the slower stage
    (``min`` of the two) are charged to the informational ``hidden_category``.
    Both stages' full seconds are assumed already charged to their own
    categories by the caller, which keeps the ledger reconcilable with the
    clock: ``foreground + background − hidden == clock`` per rank.

    This is the single slot of the §VI-C overlap algebra, shared by
    :class:`repro.core.engine.schedulers.OverlappedScheduler` and
    :class:`repro.graph.dist.DistMarkovClustering` so both schedules satisfy
    the same reconciliation identity.
    """
    foreground = np.asarray(foreground, dtype=np.float64)
    background = np.asarray(background, dtype=np.float64)
    clock += np.maximum(foreground, background)
    hidden = np.minimum(foreground, background)
    for rank in range(clock.size):
        ledger.charge(rank, hidden_category, float(hidden[rank]))


class OverlapWindow:
    """Depth-``k`` generalization of :func:`charge_overlap_slot`.

    :func:`charge_overlap_slot` co-schedules exactly one background stage
    against one foreground stage.  With speculative depth ``k`` there can be
    up to ``k`` background stages in flight (``discover(b+1..b+k)`` behind
    ``align(b)`` in the search engine, ``expand(b+1..b+k)`` behind
    ``prune(b)`` in distributed MCL).  The window models the background lane
    as a FIFO: stages enter via :meth:`push` when they are issued and drain
    at one second per second — in issue order, exactly like the executor's
    ordered worker lane — concurrently with the foreground stages.

    Each :meth:`foreground` slot may name a background stage (by its issue
    sequence number) that has to be complete before the next foreground
    stage can start — the next block's discovery.  The slot then lasts
    ``max(foreground, due)`` where ``due`` is the remaining seconds of every
    queued stage up to and including the required one (FIFO: later stages
    cannot finish before earlier ones); any further speculative backlog
    keeps draining for the whole slot.  The background seconds that ran
    concurrently with the foreground are charged to ``hidden_category``,
    which preserves the reconciliation identity of the depth-1 algebra for
    every depth::

        sum(foreground) + sum(background) - sum(hidden) == clock   (per rank)

    because every slot satisfies ``foreground + completed - hidden ==
    max(foreground, completed) == slot`` and :meth:`barrier`/:meth:`finish`
    advance the clock by exactly the un-hidden remainder.  At depth 1 the
    sequence ``push(b); foreground(f, require_seq=<that push>)`` is
    bit-identical to ``charge_overlap_slot(ledger, clock, f, b, ...)``
    (asserted in ``tests/test_mpi_runtime.py``).

    The ``clock`` array is caller-owned and mutated in place, mirroring
    :func:`charge_overlap_slot`.
    """

    def __init__(self, ledger: "CostLedger", clock: np.ndarray, hidden_category: str) -> None:
        self.ledger = ledger
        self.clock = clock
        self.hidden_category = hidden_category
        self._queue: list[tuple[int, np.ndarray]] = []  # (issue seq, remaining)
        self._next_seq = 0

    @property
    def backlog_stages(self) -> int:
        """Number of background stages with remaining work."""
        return len(self._queue)

    def push(self, seconds: np.ndarray) -> int:
        """Issue one background stage (per-rank seconds); returns its seq."""
        seq = self._next_seq
        self._next_seq += 1
        self._queue.append((seq, np.asarray(seconds, dtype=np.float64).copy()))
        return seq

    def barrier(self, count: int | None = None) -> None:
        """Run the first ``count`` queued stages to completion, foreground idle.

        Nothing is hidden: the clock advances by the stages' remaining
        seconds (the prologue — the first block's discovery has nothing to
        hide behind — and any epilogue drain).
        """
        count = len(self._queue) if count is None else min(count, len(self._queue))
        for _ in range(count):
            self.clock += self._queue.pop(0)[1]

    def finish(self) -> None:
        """Drain all remaining background work (epilogue)."""
        self.barrier()

    def run_schedule(
        self,
        foregrounds: list[np.ndarray],
        backgrounds: list[np.ndarray],
        depth: int = 1,
    ) -> None:
        """Drive one complete depth-``k`` block schedule through the window.

        The convention every caller shares (and that push sequence numbers
        equal block indices relies on): ``backgrounds[0]`` runs alone as the
        prologue (the first block's discovery has nothing to hide behind);
        foreground ``b`` then runs with backgrounds ``b+1..b+depth`` issued,
        and background ``b+1`` must complete before foreground ``b+1`` can
        start; leftover speculative backlog drains in the epilogue.  Must be
        called on a fresh window — the schedule owns the whole FIFO.
        """
        if len(foregrounds) != len(backgrounds):
            raise ValueError("need one background stage per foreground stage")
        if self._next_seq != 0:
            raise ValueError("run_schedule requires a fresh OverlapWindow")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        num_blocks = len(foregrounds)
        if num_blocks == 0:
            return
        self.push(backgrounds[0])
        self.barrier(1)
        pushed = 1
        for index in range(num_blocks):
            while pushed <= min(index + depth, num_blocks - 1):
                self.push(backgrounds[pushed])
                pushed += 1
            self.foreground(
                foregrounds[index],
                require_seq=index + 1 if index + 1 < num_blocks else None,
            )
        self.finish()

    def foreground(self, seconds: np.ndarray, require_seq: int | None = None) -> None:
        """Run one foreground stage for one schedule slot.

        ``require_seq`` names the background stage (issue sequence number,
        as returned by :meth:`push`) that must have completed by the end of
        this slot; ``None`` requires nothing (the last block's foreground
        runs with no successor to wait for).  A stage that already drained
        speculatively during earlier slots contributes nothing to ``due``.
        """
        fg = np.asarray(seconds, dtype=np.float64)
        due = np.zeros_like(fg)
        if require_seq is not None:
            for seq, stage in self._queue:
                if seq <= require_seq:
                    due = due + stage
        slot = np.maximum(fg, due)
        backlog = np.zeros_like(fg)
        for _, stage in self._queue:
            backlog = backlog + stage
        completed = np.minimum(backlog, slot)
        hidden = np.minimum(fg, completed)
        for rank in range(self.clock.size):
            self.ledger.charge(rank, self.hidden_category, float(hidden[rank]))
        self.clock += slot
        self._drain(completed)

    def _drain(self, completed: np.ndarray) -> None:
        """Consume ``completed`` per-rank seconds from the FIFO, front first."""
        remaining = completed.copy()
        kept: list[tuple[int, np.ndarray]] = []
        for seq, stage in self._queue:
            take = np.minimum(stage, remaining)
            left = stage - take
            remaining = remaining - take
            if np.any(left > 0):
                kept.append((seq, left))
        self._queue = kept


class CostLedger:
    """Accumulates per-rank, per-category time (simulated or measured seconds).

    Thread safety: every mutation and read holds an internal lock, so the
    threaded executor's two lanes (workers charging communication/measured
    categories inside ``summa``, the main thread charging ``align`` and
    ``spgemm``) can share one ledger without lost updates.  Note that the
    lock makes concurrent charging *safe*, not *ordered* — reproducible
    float sums additionally require that concurrent lanes charge disjoint
    categories (which the executor's lane split guarantees) or charge in a
    deterministic order (the executor's block-order turnstile).
    """

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self._lock = threading.Lock()
        self._time: dict[str, np.ndarray] = defaultdict(lambda: np.zeros(nranks))
        self._counters: dict[str, np.ndarray] = defaultdict(lambda: np.zeros(nranks))
        #: optional :class:`repro.trace.TraceRecorder` — when set, every
        #: charge bumps the recorder's cumulative ``ledger.<category>``
        #: counter (a dict add, sampled into events at block boundaries).
        #: Hooks run *outside* the lock: the recorder has its own, and the
        #: bump only ever touches recorder state, never ledger arrays.
        self.trace = None

    # ------------------------------------------------------------------ charging
    def charge(self, rank: int, category: str, seconds: float) -> None:
        """Add ``seconds`` of ``category`` time to one rank."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        with self._lock:
            self._time[category][rank] += seconds
        if self.trace is not None:
            self.trace.bump("ledger." + category, seconds)

    def charge_all(self, category: str, seconds: float | np.ndarray) -> None:
        """Add time to every rank (scalar, or one value per rank)."""
        arr = np.broadcast_to(np.asarray(seconds, dtype=np.float64), (self.nranks,))
        if (arr < 0).any():
            raise ValueError("cannot charge negative time")
        with self._lock:
            self._time[category] = self._time[category] + arr
        if self.trace is not None:
            self.trace.bump("ledger." + category, float(arr.sum()))

    def count(self, rank: int, counter: str, amount: float = 1.0) -> None:
        """Increment a per-rank counter (e.g. alignments, flops, bytes sent)."""
        self._check_rank(rank)
        with self._lock:
            self._counters[counter][rank] += amount

    def count_all(self, counter: str, amounts: np.ndarray | float) -> None:
        """Increment a counter on every rank."""
        arr = np.broadcast_to(np.asarray(amounts, dtype=np.float64), (self.nranks,))
        with self._lock:
            self._counters[counter] = self._counters[counter] + arr

    # ------------------------------------------------------------------ snapshots
    def snapshot(
        self, categories: tuple[str, ...], counters: tuple[str, ...] = ()
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Copy the absolute per-rank vectors of the named categories/counters.

        One consistent cut under the lock, for replay-style consumers (the
        stage cache records the ledger state a completed block left behind).
        """
        with self._lock:
            times = {cat: self._time[cat].copy() for cat in categories}
            counts = {cnt: self._counters[cnt].copy() for cnt in counters}
        return times, counts

    def restore(
        self,
        times: dict[str, np.ndarray],
        counters: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Overwrite the named categories/counters with absolute per-rank vectors.

        The inverse of :meth:`snapshot`: replaying a cached block *sets* the
        lane's categories to the values the original execution left, rather
        than re-adding per-block deltas — floating-point addition does not
        round-trip through subtraction (``S0 + (S1 - S0) != S1`` in
        general), so only absolute restoration keeps a warm run bit-identical
        to the cold run that populated the cache.  Categories not named are
        untouched, which is what makes a restore safe while other threads
        charge disjoint categories.
        """
        with self._lock:
            for cat, values in times.items():
                arr = np.asarray(values, dtype=np.float64)
                if arr.shape != (self.nranks,):
                    raise ValueError(
                        f"restore of category {cat!r} needs shape ({self.nranks},), "
                        f"got {arr.shape}"
                    )
                self._time[cat] = arr.copy()
            if self.trace is not None:
                # a restore *sets* the lane's categories (cache replay), so
                # the trace counter must follow absolutely, not additively
                for cat in times:
                    self.trace.set_value(
                        "ledger." + cat, float(np.asarray(times[cat]).sum())
                    )
            for cnt, values in (counters or {}).items():
                arr = np.asarray(values, dtype=np.float64)
                if arr.shape != (self.nranks,):
                    raise ValueError(
                        f"restore of counter {cnt!r} needs shape ({self.nranks},), "
                        f"got {arr.shape}"
                    )
                self._counters[cnt] = arr.copy()

    # ------------------------------------------------------------------ queries
    def per_rank(self, category: str) -> np.ndarray:
        """Per-rank time vector for a category (zeros if never charged)."""
        with self._lock:
            return self._time[category].copy()

    def counter_per_rank(self, counter: str) -> np.ndarray:
        """Per-rank counter vector."""
        with self._lock:
            return self._counters[counter].copy()

    def counter_total(self, counter: str) -> float:
        """Sum of a counter over ranks."""
        with self._lock:
            return float(self._counters[counter].sum())

    def categories(self) -> list[str]:
        """Names of all charged time categories."""
        with self._lock:
            return sorted(self._time.keys())

    def breakdown(self, category: str) -> TimeBreakdown:
        """Min/avg/max of a category over ranks."""
        with self._lock:
            values = self._time[category].copy()
        return TimeBreakdown.from_values(values)

    def component_time(self, category: str) -> float:
        """Bulk-synchronous component time: the maximum over ranks."""
        with self._lock:
            return float(self._time[category].max()) if category in self._time else 0.0

    def total_per_rank(self, exclude: tuple[str, ...] = ()) -> np.ndarray:
        """Sum over categories per rank, excluding the given categories."""
        total = np.zeros(self.nranks)
        with self._lock:
            for cat, values in self._time.items():
                if cat not in exclude:
                    total += values
        return total

    def total_time(self, exclude: tuple[str, ...] = ()) -> float:
        """Bulk-synchronous total runtime (max over ranks of the category sum)."""
        return float(self.total_per_rank(exclude=exclude).max())

    def percentage(self, category: str, exclude: tuple[str, ...] = ()) -> float:
        """Share of a category in the total runtime, in percent."""
        total = self.total_time(exclude=exclude)
        if total <= 0:
            return 0.0
        return 100.0 * self.component_time(category) / total

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Combine two ledgers over the same rank count (times add up)."""
        if other.nranks != self.nranks:
            raise ValueError("cannot merge ledgers with different rank counts")
        # snapshot each ledger under its own lock, sequentially (never
        # nested, so two concurrent A.merge(B)/B.merge(A) cannot deadlock)
        with self._lock:
            time_a = {cat: values.copy() for cat, values in self._time.items()}
            counters_a = {cnt: values.copy() for cnt, values in self._counters.items()}
        with other._lock:
            time_b = {cat: values.copy() for cat, values in other._time.items()}
            counters_b = {cnt: values.copy() for cnt, values in other._counters.items()}
        merged = CostLedger(self.nranks)
        for cat, values in time_a.items():
            merged._time[cat] = values
        for cat, values in time_b.items():
            merged._time[cat] = merged._time[cat] + values
        for cnt, values in counters_a.items():
            merged._counters[cnt] = values
        for cnt, values in counters_b.items():
            merged._counters[cnt] = merged._counters[cnt] + values
        return merged

    def summary(self) -> dict[str, float]:
        """Component times (max over ranks) for every category plus the total."""
        out = {cat: self.component_time(cat) for cat in self.categories()}
        out["total"] = self.total_time()
        return out

    # ------------------------------------------------------------------ helpers
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range for {self.nranks} ranks")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostLedger(nranks={self.nranks}, categories={self.categories()})"
