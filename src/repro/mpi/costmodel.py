"""Per-rank cost accounting.

Every virtual rank accumulates time into named categories ("align",
"spgemm", "sparse_other", "comm", "cwait", "io", ...).  The paper's reported
metrics map directly onto this ledger:

* component time breakdowns (Fig. 5, Fig. 7d, Table I, Table IV) — the
  per-category maximum over ranks (bulk-synchronous execution finishes when
  the slowest rank does);
* load imbalance (Fig. 7a-c, Table IV "Imbalance %") — min/avg/max over
  ranks of a category or metric;
* communication-wait and IO percentages (Table II) — category time divided
  by total time.

Schedulers (see :mod:`repro.core.engine.schedulers`) own the charging of
the "align" and "spgemm" categories, possibly inflated by the §VI-C
contention multipliers.  The overlapped scheduler additionally charges the
seconds *hidden* by the discover/align overlap to the informational
"overlap_hidden" category (excluded from reported totals), which keeps the
ledger reconcilable with the simulated clock:
``align + spgemm - overlap_hidden == combined schedule time`` per rank.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


@dataclass
class TimeBreakdown:
    """Min/avg/max of a per-rank quantity, plus the paper's imbalance metric."""

    minimum: float
    average: float
    maximum: float

    @property
    def imbalance_percent(self) -> float:
        """Load imbalance as ``(max / avg - 1) * 100`` (0 for perfectly balanced)."""
        if self.average <= 0:
            return 0.0
        return (self.maximum / self.average - 1.0) * 100.0

    @classmethod
    def from_values(cls, values: np.ndarray | list[float]) -> "TimeBreakdown":
        """Build from a per-rank vector."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return cls(0.0, 0.0, 0.0)
        return cls(float(arr.min()), float(arr.mean()), float(arr.max()))


def charge_overlap_slot(
    ledger: "CostLedger",
    clock: np.ndarray,
    foreground: np.ndarray,
    background: np.ndarray,
    hidden_category: str,
) -> None:
    """Advance a per-rank simulated clock by one overlapped schedule slot.

    The slot co-schedules two stages — e.g. ``align(b)`` against
    ``discover(b+1)`` in the search engine, or ``prune(b)`` against
    ``expand(b+1)`` in the distributed Markov clustering — so each rank pays
    the *slower* of the two, and the seconds hidden behind the slower stage
    (``min`` of the two) are charged to the informational ``hidden_category``.
    Both stages' full seconds are assumed already charged to their own
    categories by the caller, which keeps the ledger reconcilable with the
    clock: ``foreground + background − hidden == clock`` per rank.

    This is the single slot of the §VI-C overlap algebra, shared by
    :class:`repro.core.engine.schedulers.OverlappedScheduler` and
    :class:`repro.graph.dist.DistMarkovClustering` so both schedules satisfy
    the same reconciliation identity.
    """
    foreground = np.asarray(foreground, dtype=np.float64)
    background = np.asarray(background, dtype=np.float64)
    clock += np.maximum(foreground, background)
    hidden = np.minimum(foreground, background)
    for rank in range(clock.size):
        ledger.charge(rank, hidden_category, float(hidden[rank]))


class CostLedger:
    """Accumulates per-rank, per-category time (simulated or measured seconds)."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self._time: dict[str, np.ndarray] = defaultdict(lambda: np.zeros(nranks))
        self._counters: dict[str, np.ndarray] = defaultdict(lambda: np.zeros(nranks))

    # ------------------------------------------------------------------ charging
    def charge(self, rank: int, category: str, seconds: float) -> None:
        """Add ``seconds`` of ``category`` time to one rank."""
        self._check_rank(rank)
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._time[category][rank] += seconds

    def charge_all(self, category: str, seconds: float | np.ndarray) -> None:
        """Add time to every rank (scalar, or one value per rank)."""
        arr = np.broadcast_to(np.asarray(seconds, dtype=np.float64), (self.nranks,))
        if (arr < 0).any():
            raise ValueError("cannot charge negative time")
        self._time[category] = self._time[category] + arr

    def count(self, rank: int, counter: str, amount: float = 1.0) -> None:
        """Increment a per-rank counter (e.g. alignments, flops, bytes sent)."""
        self._check_rank(rank)
        self._counters[counter][rank] += amount

    def count_all(self, counter: str, amounts: np.ndarray | float) -> None:
        """Increment a counter on every rank."""
        arr = np.broadcast_to(np.asarray(amounts, dtype=np.float64), (self.nranks,))
        self._counters[counter] = self._counters[counter] + arr

    # ------------------------------------------------------------------ queries
    def per_rank(self, category: str) -> np.ndarray:
        """Per-rank time vector for a category (zeros if never charged)."""
        return self._time[category].copy()

    def counter_per_rank(self, counter: str) -> np.ndarray:
        """Per-rank counter vector."""
        return self._counters[counter].copy()

    def counter_total(self, counter: str) -> float:
        """Sum of a counter over ranks."""
        return float(self._counters[counter].sum())

    def categories(self) -> list[str]:
        """Names of all charged time categories."""
        return sorted(self._time.keys())

    def breakdown(self, category: str) -> TimeBreakdown:
        """Min/avg/max of a category over ranks."""
        return TimeBreakdown.from_values(self._time[category])

    def component_time(self, category: str) -> float:
        """Bulk-synchronous component time: the maximum over ranks."""
        return float(self._time[category].max()) if category in self._time else 0.0

    def total_per_rank(self, exclude: tuple[str, ...] = ()) -> np.ndarray:
        """Sum over categories per rank, excluding the given categories."""
        total = np.zeros(self.nranks)
        for cat, values in self._time.items():
            if cat not in exclude:
                total += values
        return total

    def total_time(self, exclude: tuple[str, ...] = ()) -> float:
        """Bulk-synchronous total runtime (max over ranks of the category sum)."""
        return float(self.total_per_rank(exclude=exclude).max())

    def percentage(self, category: str, exclude: tuple[str, ...] = ()) -> float:
        """Share of a category in the total runtime, in percent."""
        total = self.total_time(exclude=exclude)
        if total <= 0:
            return 0.0
        return 100.0 * self.component_time(category) / total

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Combine two ledgers over the same rank count (times add up)."""
        if other.nranks != self.nranks:
            raise ValueError("cannot merge ledgers with different rank counts")
        merged = CostLedger(self.nranks)
        for cat, values in self._time.items():
            merged._time[cat] = values.copy()
        for cat, values in other._time.items():
            merged._time[cat] = merged._time[cat] + values
        for cnt, values in self._counters.items():
            merged._counters[cnt] = values.copy()
        for cnt, values in other._counters.items():
            merged._counters[cnt] = merged._counters[cnt] + values
        return merged

    def summary(self) -> dict[str, float]:
        """Component times (max over ranks) for every category plus the total."""
        out = {cat: self.component_time(cat) for cat in self.categories()}
        out["total"] = self.total_time()
        return out

    # ------------------------------------------------------------------ helpers
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range for {self.nranks} ranks")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostLedger(nranks={self.nranks}, categories={self.categories()})"
