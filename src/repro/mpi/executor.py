"""SPMD executor: run a per-rank function over all virtual ranks.

Local computations of the distributed algorithms (e.g. the per-rank local
SpGEMM of one SUMMA stage) are expressed as a function of the rank id.  The
executor maps it over ranks either serially or on a thread pool (NumPy
releases the GIL for the heavy kernels, so threads give real concurrency),
measures each rank's wall time, and charges it to the ledger under the given
category.

The measured times are what the load-imbalance figures (Fig. 7) report; the
*component* time is the maximum over ranks, matching bulk-synchronous
execution semantics.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

from .costmodel import CostLedger


@dataclass
class SpmdExecutor:
    """Maps per-rank work over all ranks and accounts its time.

    Parameters
    ----------
    ledger:
        Cost ledger charged with each rank's measured time.
    use_threads:
        Execute ranks concurrently on a thread pool.
    max_workers:
        Thread-pool size when ``use_threads`` is enabled.
    time_scale:
        Multiplier applied to measured times before charging (the perfmodel
        uses this to translate "CPU-measured" seconds into "node-modelled"
        seconds; the functional pipeline leaves it at 1.0).
    """

    ledger: CostLedger
    use_threads: bool = False
    max_workers: int = 8
    time_scale: float = 1.0

    def run(
        self,
        nranks: int,
        fn: Callable[[int], Any],
        category: str,
    ) -> list[Any]:
        """Execute ``fn(rank)`` for every rank; returns per-rank results.

        Each rank's wall time (scaled by ``time_scale``) is charged to
        ``category``.
        """
        results: list[Any] = [None] * nranks
        durations = [0.0] * nranks

        def timed(rank: int) -> tuple[int, Any, float]:
            start = time.perf_counter()
            value = fn(rank)
            return rank, value, time.perf_counter() - start

        if self.use_threads and nranks > 1:
            with ThreadPoolExecutor(max_workers=min(self.max_workers, nranks)) as pool:
                for rank, value, duration in pool.map(timed, range(nranks)):
                    results[rank] = value
                    durations[rank] = duration
        else:
            for rank in range(nranks):
                _, value, duration = timed(rank)
                results[rank] = value
                durations[rank] = duration

        for rank, duration in enumerate(durations):
            self.ledger.charge(rank, category, duration * self.time_scale)
        return results

    def run_charged(
        self,
        nranks: int,
        fn: Callable[[int], tuple[Any, float]],
        category: str,
    ) -> list[Any]:
        """Like :meth:`run`, but ``fn`` returns ``(result, modelled_seconds)``.

        Used when the per-rank cost should come from a hardware model (e.g.
        GPU-modelled alignment time) rather than from the measured wall clock.
        """
        results: list[Any] = [None] * nranks
        for rank in range(nranks):
            value, seconds = fn(rank)
            results[rank] = value
            self.ledger.charge(rank, category, seconds * self.time_scale)
        return results
