"""2D process grid.

CombBLAS distributes sparse matrices over a square ``sqrt(p) x sqrt(p)``
process grid; PASTIS inherits that requirement ("It uses a square process
grid with the requirement of number of processes to be a perfect square
number" — the production run uses a 58x58 grid on 3364 nodes).  The grid
provides rank <-> (row, col) mapping, the row/column communicator groups that
SUMMA broadcasts along, and the index ranges of the 2D block each rank owns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def is_perfect_square(p: int) -> bool:
    """True if ``p`` is a perfect square (valid process count for the grid)."""
    if p <= 0:
        return False
    root = int(np.sqrt(p) + 0.5)
    return root * root == p


@dataclass(frozen=True)
class ProcessGrid:
    """A square 2D process grid of ``nprocs = grid_dim**2`` ranks (row-major)."""

    grid_dim: int

    def __post_init__(self) -> None:
        if self.grid_dim <= 0:
            raise ValueError("grid_dim must be positive")

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_nprocs(cls, nprocs: int) -> "ProcessGrid":
        """Build from a process count, which must be a perfect square."""
        if not is_perfect_square(nprocs):
            raise ValueError(f"number of processes ({nprocs}) must be a perfect square")
        return cls(grid_dim=int(np.sqrt(nprocs) + 0.5))

    # ------------------------------------------------------------------ topology
    @property
    def nprocs(self) -> int:
        """Total number of ranks in the grid."""
        return self.grid_dim * self.grid_dim

    def coords(self, rank: int) -> tuple[int, int]:
        """(row, col) coordinates of a rank."""
        self._check_rank(rank)
        return divmod(rank, self.grid_dim)

    def rank_of(self, row: int, col: int) -> int:
        """Rank at grid coordinates (row, col)."""
        if not (0 <= row < self.grid_dim and 0 <= col < self.grid_dim):
            raise IndexError("grid coordinates out of range")
        return row * self.grid_dim + col

    def row_group(self, row: int) -> list[int]:
        """Ranks of one grid row (a SUMMA row-broadcast group)."""
        return [self.rank_of(row, c) for c in range(self.grid_dim)]

    def col_group(self, col: int) -> list[int]:
        """Ranks of one grid column (a SUMMA column-broadcast group)."""
        return [self.rank_of(r, col) for r in range(self.grid_dim)]

    def row_of(self, rank: int) -> int:
        """Grid row of a rank."""
        return self.coords(rank)[0]

    def col_of(self, rank: int) -> int:
        """Grid column of a rank."""
        return self.coords(rank)[1]

    # ------------------------------------------------------------------ data decomposition
    def block_bounds(self, n: int, index: int) -> tuple[int, int]:
        """Index range ``[lo, hi)`` of the ``index``-th of ``grid_dim`` chunks of ``n``.

        Uses the balanced splitting where the first ``n % grid_dim`` chunks get
        one extra element.
        """
        if not 0 <= index < self.grid_dim:
            raise IndexError("chunk index out of range")
        base = n // self.grid_dim
        extra = n % self.grid_dim
        lo = index * base + min(index, extra)
        hi = lo + base + (1 if index < extra else 0)
        return lo, hi

    def owner_of(self, n_rows: int, n_cols: int, i: int, j: int) -> int:
        """Rank owning element (i, j) of an ``n_rows x n_cols`` matrix."""
        row_sizes = [self.block_bounds(n_rows, r) for r in range(self.grid_dim)]
        col_sizes = [self.block_bounds(n_cols, c) for c in range(self.grid_dim)]
        grid_row = next(r for r, (lo, hi) in enumerate(row_sizes) if lo <= i < hi)
        grid_col = next(c for c, (lo, hi) in enumerate(col_sizes) if lo <= j < hi)
        return self.rank_of(grid_row, grid_col)

    def local_shape(self, n_rows: int, n_cols: int, rank: int) -> tuple[int, int]:
        """Shape of the local 2D block owned by a rank."""
        row, col = self.coords(rank)
        rlo, rhi = self.block_bounds(n_rows, row)
        clo, chi = self.block_bounds(n_cols, col)
        return rhi - rlo, chi - clo

    def local_ranges(
        self, n_rows: int, n_cols: int, rank: int
    ) -> tuple[tuple[int, int], tuple[int, int]]:
        """Global (row range, col range) of a rank's block."""
        row, col = self.coords(rank)
        return self.block_bounds(n_rows, row), self.block_bounds(n_cols, col)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range for grid of {self.nprocs}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessGrid({self.grid_dim}x{self.grid_dim})"
