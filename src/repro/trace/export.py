"""Trace serialization: compact JSONL and Chrome trace-event JSON.

Two formats, one source of truth:

* **JSONL** (``trace.jsonl``) — the canonical on-disk form.  Line 1 is a
  meta record (schema version, epoch, parent pid); every further line is
  one span or counter sample with times in seconds relative to the
  epoch.  Machine-diffable, streamable, and what the CLI consumes.
* **Chrome trace-event JSON** (``trace.json``) — the
  ``{"traceEvents": [...]}`` document Perfetto and ``chrome://tracing``
  load (the same format PyTorch's profiler and dask's task-stream emit):
  spans as complete events (``ph: "X"``, microsecond ``ts``/``dur``,
  ``pid``/``tid``), counter series as ``ph: "C"`` events, plus
  ``ph: "M"`` metadata naming each process ("parent"/"worker") and each
  thread by the lane its spans run in.

``write_trace`` writes both next to each other; it is also what the
pipeline calls from its failure path, so a run that dies mid-schedule
still leaves a loadable trace of everything recorded up to the fault.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .recorder import CounterSample, Span, TraceRecorder

#: Schema version of the JSONL format (bump on incompatible change).
TRACE_SCHEMA_VERSION = 1

#: Default file names inside a ``trace_dir``.
JSONL_NAME = "trace.jsonl"
CHROME_NAME = "trace.json"


# --------------------------------------------------------------------------- JSONL
def _span_record(span: Span, epoch: float) -> dict:
    record = {
        "type": "span",
        "name": span.name,
        "cat": span.category,
        "t0": span.t_start - epoch,
        "t1": span.t_end - epoch,
        "pid": span.pid,
        "tid": span.tid,
        "lane": span.lane,
    }
    if span.rank is not None:
        record["rank"] = span.rank
    if span.block is not None:
        record["block"] = list(span.block)
    if span.attrs:
        record["attrs"] = {k: v for k, v in span.attrs}
    return record


def _counter_record(sample: CounterSample, epoch: float) -> dict:
    return {
        "type": "counter",
        "name": sample.name,
        "t": sample.t - epoch,
        "value": sample.value,
        "pid": sample.pid,
    }


def jsonl_lines(recorder: TraceRecorder) -> list[str]:
    """Serialize a recorder to JSONL lines (meta first, then events in
    time order)."""
    spans, counters = recorder.snapshot()
    epoch = recorder.epoch
    meta = {
        "type": "meta",
        "schema": TRACE_SCHEMA_VERSION,
        "epoch": epoch,
        "pid": recorder.pid,
    }
    records = [_span_record(s, epoch) for s in spans]
    records += [_counter_record(c, epoch) for c in counters]
    records.sort(key=lambda r: r.get("t0", r.get("t", 0.0)))
    return [json.dumps(meta)] + [json.dumps(r) for r in records]


def write_jsonl(recorder: TraceRecorder, path: str | os.PathLike) -> Path:
    """Write the canonical JSONL trace."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(jsonl_lines(recorder)) + "\n")
    return path


def read_jsonl(path: str | os.PathLike) -> tuple[dict, list[dict], list[dict]]:
    """Parse a JSONL trace into ``(meta, spans, counters)`` dictionaries."""
    meta: dict = {}
    spans: list[dict] = []
    counters: list[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            meta = record
        elif kind == "span":
            spans.append(record)
        elif kind == "counter":
            counters.append(record)
        else:
            raise ValueError(f"unknown trace record type {kind!r} in {path}")
    if meta.get("schema") not in (None, TRACE_SCHEMA_VERSION):
        raise ValueError(
            f"trace schema {meta.get('schema')!r} is not supported "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    return meta, spans, counters


# --------------------------------------------------------------------------- Chrome
def chrome_events(meta: dict, spans: list[dict], counters: list[dict]) -> list[dict]:
    """Build the Chrome trace-event list from parsed JSONL records.

    Times arrive in relative seconds and leave in microseconds (the
    trace-event clock unit).  Each distinct ``(pid, tid)`` is named after
    the lane of its first span, and each pid after its role (the recorder's
    own pid is the parent; every other pid is a discover worker).
    """
    parent_pid = meta.get("pid")
    events: list[dict] = []
    seen_pids: dict[int, None] = {}
    thread_lane: dict[tuple[int, int], str] = {}
    for span in spans:
        pid, tid = span["pid"], span["tid"]
        seen_pids.setdefault(pid, None)
        thread_lane.setdefault((pid, tid), span.get("lane", "main"))
    for counter in counters:
        seen_pids.setdefault(counter["pid"], None)

    for pid in seen_pids:
        role = "parent" if parent_pid is None or pid == parent_pid else "discover-worker"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{role} (pid {pid})"},
            }
        )
    for (pid, tid), lane in thread_lane.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )

    for span in spans:
        args = dict(span.get("attrs", {}))
        args["lane"] = span.get("lane", "main")
        if "rank" in span:
            args["rank"] = span["rank"]
        if "block" in span:
            args["block"] = span["block"]
        events.append(
            {
                "name": span["name"],
                "cat": span["cat"],
                "ph": "X",
                "ts": span["t0"] * 1e6,
                "dur": max(0.0, (span["t1"] - span["t0"]) * 1e6),
                "pid": span["pid"],
                "tid": span["tid"],
                "args": args,
            }
        )
    for counter in counters:
        events.append(
            {
                "name": counter["name"],
                "ph": "C",
                "ts": counter["t"] * 1e6,
                "pid": counter["pid"],
                "tid": 0,
                "args": {"value": counter["value"]},
            }
        )
    return events


def write_chrome(recorder: TraceRecorder, path: str | os.PathLike) -> Path:
    """Write a Perfetto-loadable Chrome trace-event file from a recorder."""
    spans, counters = recorder.snapshot()
    epoch = recorder.epoch
    meta = {"pid": recorder.pid}
    span_records = [_span_record(s, epoch) for s in spans]
    counter_records = [_counter_record(c, epoch) for c in counters]
    return _write_chrome_document(
        chrome_events(meta, span_records, counter_records), path
    )


def chrome_from_jsonl(jsonl_path: str | os.PathLike, out_path: str | os.PathLike) -> Path:
    """Convert a JSONL trace to a Chrome trace-event file."""
    meta, spans, counters = read_jsonl(jsonl_path)
    return _write_chrome_document(chrome_events(meta, spans, counters), out_path)


def _write_chrome_document(events: list[dict], path: str | os.PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
    )
    return path


def write_trace(recorder: TraceRecorder, trace_dir: str | os.PathLike) -> dict[str, str]:
    """Write both formats into ``trace_dir``; returns the file paths.

    The pipeline calls this on success *and* from its failure path, so a
    partial trace of a crashed run is still a valid document in both
    formats.
    """
    trace_dir = Path(trace_dir)
    jsonl_path = write_jsonl(recorder, trace_dir / JSONL_NAME)
    chrome_path = write_chrome(recorder, trace_dir / CHROME_NAME)
    return {"jsonl": str(jsonl_path), "chrome": str(chrome_path)}


# --------------------------------------------------------------------------- summaries
def aggregate(spans: list[dict]) -> dict[tuple[str, str], dict[str, float]]:
    """Aggregate span records by ``(category, name)``."""
    out: dict[tuple[str, str], dict[str, float]] = {}
    for span in spans:
        key = (span["cat"], span["name"])
        agg = out.setdefault(key, {"count": 0.0, "seconds": 0.0})
        agg["count"] += 1
        agg["seconds"] += span["t1"] - span["t0"]
    return out


def aggregate_lanes(spans: list[dict]) -> dict[tuple[int, str], dict[str, float]]:
    """Aggregate span records by ``(pid, lane)``."""
    out: dict[tuple[int, str], dict[str, float]] = {}
    for span in spans:
        key = (span["pid"], span.get("lane", "main"))
        agg = out.setdefault(key, {"count": 0.0, "seconds": 0.0})
        agg["count"] += 1
        agg["seconds"] += span["t1"] - span["t0"]
    return out


def summarize_text(path: str | os.PathLike) -> str:
    """Per-stage and per-lane breakdown table of one JSONL trace."""
    meta, spans, counters = read_jsonl(path)
    by_stage = aggregate(spans)
    by_lane = aggregate_lanes(spans)
    total = sum(agg["seconds"] for agg in by_stage.values())
    lines = [
        f"Trace {path}",
        f"  spans {len(spans)}  counter samples {len(counters)}  "
        f"span seconds {total:.6f}",
        "",
        f"  {'category':<12} {'name':<18} {'count':>7} {'seconds':>12} {'share':>7}",
    ]
    for (cat, name), agg in sorted(
        by_stage.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        share = 100.0 * agg["seconds"] / total if total > 0 else 0.0
        lines.append(
            f"  {cat:<12} {name:<18} {int(agg['count']):>7} "
            f"{agg['seconds']:>12.6f} {share:>6.1f}%"
        )
    lines += ["", f"  {'pid':<8} {'lane':<14} {'spans':>7} {'seconds':>12}"]
    for (pid, lane), agg in sorted(by_lane.items()):
        lines.append(
            f"  {pid:<8} {lane:<14} {int(agg['count']):>7} {agg['seconds']:>12.6f}"
        )
    return "\n".join(lines)


def diff_text(path_a: str | os.PathLike, path_b: str | os.PathLike) -> str:
    """Side-by-side per-stage comparison of two JSONL traces (the
    cold-vs-warm and serial-vs-process cases)."""
    _, spans_a, _ = read_jsonl(path_a)
    _, spans_b, _ = read_jsonl(path_b)
    agg_a = aggregate(spans_a)
    agg_b = aggregate(spans_b)
    keys = sorted(set(agg_a) | set(agg_b))
    lines = [
        f"A: {path_a}",
        f"B: {path_b}",
        "",
        f"  {'category':<12} {'name':<18} {'count A':>8} {'count B':>8} "
        f"{'sec A':>11} {'sec B':>11} {'delta':>11}",
    ]
    for key in keys:
        a = agg_a.get(key, {"count": 0.0, "seconds": 0.0})
        b = agg_b.get(key, {"count": 0.0, "seconds": 0.0})
        lines.append(
            f"  {key[0]:<12} {key[1]:<18} {int(a['count']):>8} {int(b['count']):>8} "
            f"{a['seconds']:>11.6f} {b['seconds']:>11.6f} "
            f"{b['seconds'] - a['seconds']:>+11.6f}"
        )
    total_a = sum(v["seconds"] for v in agg_a.values())
    total_b = sum(v["seconds"] for v in agg_b.values())
    lines += [
        "",
        f"  span seconds: A {total_a:.6f}  B {total_b:.6f}  "
        f"delta {total_b - total_a:+.6f}",
    ]
    return "\n".join(lines)


def resolve_trace_path(path: str | os.PathLike) -> Path:
    """Accept a trace file or a ``trace_dir`` (resolved to its JSONL)."""
    path = Path(path)
    if path.is_dir():
        return path / JSONL_NAME
    return path
