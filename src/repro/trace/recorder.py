"""The span/counter recorder behind :mod:`repro.trace`.

A :class:`TraceRecorder` collects two kinds of events:

* **spans** — named, categorized ``[t_start, t_end)`` intervals with
  process/thread attribution (``pid``/``tid``), an optional output-block
  coordinate, a display ``lane`` and free-form attributes.  Spans are
  emitted either through the :meth:`TraceRecorder.span` context manager
  (times taken at enter/exit) or through :meth:`TraceRecorder.add_span`
  for intervals the caller already timed (e.g. the turnstile's wait
  portion).
* **counter samples** — ``(name, t, value)`` points of a time series.
  Cheap *cumulative* counters (:meth:`bump`, :meth:`set_value`) are plain
  dictionary updates on the hot path; they only become events when
  :meth:`sample_counters` materializes the current values, which the
  schedulers call at block boundaries.  This is what keeps per-charge
  ledger hooks affordable: a ``charge()`` costs one dict add, not one
  event allocation.

Timestamps are ``time.perf_counter()`` seconds.  On Linux that clock is
``CLOCK_MONOTONIC`` — system-wide, not per-process — so a recorder
*epoch* taken in the parent is a valid origin for spans recorded in
forked worker processes: :class:`ProcessScheduler` workers build a fresh
recorder sharing the parent's epoch, journal their spans alongside the
existing per-block ledger journal, and the parent merges them with the
worker's ``pid`` already baked in (see
:mod:`repro.core.engine.process_executor`).

Thread safety: all mutation happens under one lock; recording from the
threaded executor's worker pool and the main align lane concurrently is
safe.  The recorder never touches run state — it only appends to its own
lists — which is what makes tracing provably non-perturbing (asserted by
the bit-identity tests in ``tests/test_trace.py``).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Span:
    """One named interval. ``attrs`` is a tuple of ``(key, value)`` pairs
    (hashable, compactly picklable — workers ship spans over the pipe)."""

    name: str
    category: str
    t_start: float
    t_end: float
    pid: int
    tid: int
    lane: str = "main"
    rank: int | None = None
    block: tuple[int, int] | None = None
    attrs: tuple = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def attrs_dict(self) -> dict:
        return dict(self.attrs)


@dataclass(frozen=True)
class CounterSample:
    """One point of a counter time series."""

    name: str
    t: float
    value: float
    pid: int


class _SpanHandle:
    """Context manager recording one span; ``set(**attrs)`` adds attributes."""

    __slots__ = ("_recorder", "_name", "_category", "_lane", "_rank", "_block",
                 "_attrs", "_t0")

    def __init__(self, recorder, name, category, lane, rank, block, attrs):
        self._recorder = recorder
        self._name = name
        self._category = category
        self._lane = lane
        self._rank = rank
        self._block = block
        self._attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._t0 = time.perf_counter()
        return self

    def set(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = time.perf_counter()
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._recorder.add_span(
            self._name,
            self._category,
            self._t0,
            t1,
            lane=self._lane,
            rank=self._rank,
            block=self._block,
            **self._attrs,
        )
        return False


class _NullHandle:
    """The disabled-tracing stand-in: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullHandle":
        return self

    def set(self, **attrs) -> None:
        pass

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullHandle()


def maybe_span(recorder, name: str, category: str, *, lane: str = "main",
               rank: int | None = None, block: tuple[int, int] | None = None,
               **attrs):
    """A span on ``recorder``, or the shared no-op handle when it is None.

    The single guard instrumented code needs: hot sites write
    ``with maybe_span(ctx.trace, ...)`` and pay only a null context manager
    when tracing is disabled.
    """
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, category, lane=lane, rank=rank, block=block, **attrs)


class TraceRecorder:
    """Collects spans and counter series for one run (or one worker's share)."""

    def __init__(self, epoch: float | None = None) -> None:
        #: origin all exported timestamps are relative to (perf_counter
        #: seconds); pass the parent's epoch when building worker recorders
        self.epoch = time.perf_counter() if epoch is None else float(epoch)
        #: pid of the process that built the recorder (the parent, in
        #: exported traces — worker spans carry their own pid)
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self._cumulative: dict[str, float] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ spans
    def span(self, name: str, category: str, *, lane: str = "main",
             rank: int | None = None, block: tuple[int, int] | None = None,
             **attrs) -> _SpanHandle:
        """Context manager measuring one span (times taken at enter/exit)."""
        return _SpanHandle(self, name, category, lane, rank, block, attrs)

    def add_span(self, name: str, category: str, t_start: float, t_end: float,
                 *, lane: str = "main", rank: int | None = None,
                 block: tuple[int, int] | None = None, **attrs) -> None:
        """Record an interval the caller timed itself (perf_counter seconds)."""
        span = Span(
            name=name,
            category=category,
            t_start=float(t_start),
            t_end=float(t_end),
            pid=os.getpid(),
            tid=threading.get_ident(),
            lane=lane,
            rank=rank,
            block=block,
            attrs=tuple(sorted(attrs.items())),
        )
        with self._lock:
            self.spans.append(span)

    # ------------------------------------------------------------------ counters
    def bump(self, name: str, delta: float) -> None:
        """Add to a cumulative counter (cheap; no event until sampled)."""
        with self._lock:
            self._cumulative[name] = self._cumulative.get(name, 0.0) + delta

    def set_value(self, name: str, value: float) -> None:
        """Overwrite a cumulative counter (cache replay restores absolutes)."""
        with self._lock:
            self._cumulative[name] = float(value)

    def sample_counters(self, **values: float) -> None:
        """Materialize counter samples: the given values plus every
        cumulative counter, all stamped with one timestamp.  Schedulers call
        this at span boundaries (after each block's accumulate)."""
        now = time.perf_counter()
        pid = os.getpid()
        with self._lock:
            for name, value in values.items():
                self.counters.append(CounterSample(name, now, float(value), pid))
            for name, value in self._cumulative.items():
                self.counters.append(CounterSample(name, now, float(value), pid))

    # ------------------------------------------------------------------ worker journaling
    def drain(self) -> tuple[list[Span], list[CounterSample]]:
        """Return and clear the recorded events (worker-side, per block:
        the drained lists ride the block header to the parent)."""
        with self._lock:
            spans, self.spans = self.spans, []
            counters, self.counters = self.counters, []
        return spans, counters

    def merge(self, spans, counters=()) -> None:
        """Append events journaled elsewhere (parent-side worker merge).

        Called from the process executor's block-ordered replay, so worker
        spans land in the parent recorder in block order even though they
        were produced concurrently; each span keeps the pid/tid of the
        worker that produced it.
        """
        with self._lock:
            self.spans.extend(spans)
            self.counters.extend(counters)

    # ------------------------------------------------------------------ views
    def snapshot(self) -> tuple[list[Span], list[CounterSample]]:
        """A consistent copy of the recorded events."""
        with self._lock:
            return list(self.spans), list(self.counters)

    def summary(self) -> dict[tuple[str, str], dict[str, float]]:
        """Aggregate spans by ``(category, name)``: count and total seconds."""
        spans, _ = self.snapshot()
        out: dict[tuple[str, str], dict[str, float]] = {}
        for span in spans:
            key = (span.category, span.name)
            agg = out.setdefault(key, {"count": 0.0, "seconds": 0.0})
            agg["count"] += 1
            agg["seconds"] += span.duration
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceRecorder(spans={len(self.spans)}, "
            f"counters={len(self.counters)}, pid={self.pid})"
        )
