"""CLI: summarize, convert and diff run traces.

``summarize`` renders the per-stage / per-lane breakdown of one trace,
``export`` converts the canonical JSONL to a Perfetto-loadable Chrome
trace-event file, ``diff`` compares two runs stage by stage (cold vs
warm cache, serial vs process, ...).  Every command accepts either a
``trace.jsonl`` path or the ``trace_dir`` a traced run wrote into.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .export import chrome_from_jsonl, diff_text, resolve_trace_path, summarize_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect structured run traces (see repro.trace).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-stage/per-lane breakdown table")
    p_sum.add_argument("trace", help="trace.jsonl file or trace_dir")

    p_exp = sub.add_parser("export", help="convert JSONL to Chrome trace-event JSON")
    p_exp.add_argument("trace", help="trace.jsonl file or trace_dir")
    p_exp.add_argument(
        "-o", "--output", default=None,
        help="output path (default: <trace>.trace.json next to the input)",
    )

    p_diff = sub.add_parser("diff", help="stage-by-stage comparison of two traces")
    p_diff.add_argument("trace_a", help="baseline trace.jsonl file or trace_dir")
    p_diff.add_argument("trace_b", help="comparison trace.jsonl file or trace_dir")

    args = parser.parse_args(argv)

    if args.command == "summarize":
        print(summarize_text(resolve_trace_path(args.trace)))
        return 0
    if args.command == "export":
        source = resolve_trace_path(args.trace)
        output = (
            Path(args.output)
            if args.output is not None
            else source.with_suffix(".trace.json")
        )
        path = chrome_from_jsonl(source, output)
        print(f"wrote {path}")
        return 0
    if args.command == "diff":
        print(
            diff_text(
                resolve_trace_path(args.trace_a), resolve_trace_path(args.trace_b)
            )
        )
        return 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
