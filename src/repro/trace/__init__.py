"""Structured run tracing: per-stage spans with Perfetto export.

Everything the repo records about a run is an aggregate — ``SearchStats``
totals, ledger category sums, ``StageTimeline`` matrices.  This package
records the run as it happened: a :class:`TraceRecorder` collects
**spans** — ``(name, category, t_start, t_end, pid, tid, lane, block,
attrs)`` — for every stage of every block (discover / prune / align /
accumulate), cache loads and replays, SUMMA broadcast stages, admission
and turnstile waits, MCL iterations and top-level pipeline phases, plus
**counter series** (live blocks, ledger category totals, shm bytes,
cache hits) sampled at block boundaries.

Enable it per run with ``PastisParams.trace=True`` (recorder attached to
``SearchResult.trace``) and/or ``PastisParams.trace_dir="..."`` (the
pipeline additionally writes ``trace.jsonl`` + ``trace.json`` into the
directory, the latter loadable in Perfetto / ``chrome://tracing``).
Tracing is **off by default and zero-cost when disabled**: instrumented
sites guard on ``ctx.trace is None`` (or the no-op handle from
:func:`maybe_span`), and it is provably non-perturbing — records, edges
and every deterministic ledger category are bit-identical with tracing
on (asserted in ``tests/test_trace.py``).

All four schedulers emit through one recorder: Serial / Overlapped /
Threaded record directly (the threaded executor adds ``admission_wait``
and ``turnstile_wait`` spans from its worker threads);
:class:`~repro.core.engine.process_executor.ProcessScheduler` workers
journal spans into the per-block result header — the same pattern as
their ``RecordingLedger`` ledger journal — and the parent merges them in
block order with the worker's pid attribution intact.

Deep sites without a :class:`~repro.core.engine.stages.StageContext`
(the SUMMA stage loop, Markov clustering) find the recorder through the
module-level active tracer (:func:`activate` / :func:`current_tracer`),
which the pipeline installs for the duration of a traced run and which
forked workers re-point at their own recorder.

CLI::

    python -m repro.trace summarize <trace.jsonl | trace_dir>
    python -m repro.trace export    <trace.jsonl> [-o out.trace.json]
    python -m repro.trace diff      <a.jsonl> <b.jsonl>
"""

from __future__ import annotations

from .export import (
    CHROME_NAME,
    JSONL_NAME,
    TRACE_SCHEMA_VERSION,
    chrome_from_jsonl,
    diff_text,
    read_jsonl,
    summarize_text,
    write_chrome,
    write_jsonl,
    write_trace,
)
from .recorder import CounterSample, Span, TraceRecorder, maybe_span

#: The run-scoped active recorder.  A plain module global (not a
#: thread-local): the threaded executor's pool threads and forked worker
#: processes must all see it.  One traced run at a time per process —
#: the same cardinality as the process executor's ``_WORKER_CTX``.
_ACTIVE: TraceRecorder | None = None


def activate(recorder: TraceRecorder) -> None:
    """Install ``recorder`` as the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = recorder


def deactivate() -> None:
    """Clear the active tracer (pipeline teardown)."""
    global _ACTIVE
    _ACTIVE = None


def current_tracer() -> TraceRecorder | None:
    """The active recorder, or None when tracing is off (the common case)."""
    return _ACTIVE


__all__ = [
    "CHROME_NAME",
    "CounterSample",
    "JSONL_NAME",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "activate",
    "chrome_from_jsonl",
    "current_tracer",
    "deactivate",
    "diff_text",
    "maybe_span",
    "read_jsonl",
    "summarize_text",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]
