"""Output formatting and run reports.

* :mod:`repro.io.tables` — fixed-width table rendering used by the benchmark
  harnesses to print paper-style tables (Table I, II, IV);
* :mod:`repro.io.report` — serializing :class:`repro.core.stats.SearchStats`
  and benchmark series to JSON for EXPERIMENTS.md bookkeeping.
"""

from .tables import format_table, format_markdown_table
from .report import clustering_report, clustering_table, run_report, save_json, load_json

__all__ = [
    "format_table",
    "format_markdown_table",
    "clustering_report",
    "clustering_table",
    "run_report",
    "save_json",
    "load_json",
]
