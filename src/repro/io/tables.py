"""Fixed-width and markdown table rendering for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def _render_cell(value: Any, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 3,
    indent: str = "",
) -> str:
    """Render a fixed-width text table (right-aligned numeric-ish columns)."""
    rendered = [[_render_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [
        indent + "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        indent + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append(indent + "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 3,
) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    rendered = [[_render_cell(v, precision) for v in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
