"""Run reports: JSON serialization of statistics and benchmark series."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..core.stats import SearchStats


def _jsonable(value: Any) -> Any:
    """Convert NumPy scalars/arrays so the structure is JSON serializable."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def run_report(stats: SearchStats, extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """A flat, JSON-serializable report of one run."""
    report = _jsonable(stats.as_dict())
    if extra:
        report.update(_jsonable(extra))
    return report


def save_json(data: Any, path: str | os.PathLike) -> None:
    """Write a JSON document (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(data), indent=2, sort_keys=True))


def load_json(path: str | os.PathLike) -> Any:
    """Read a JSON document."""
    return json.loads(Path(path).read_text())
