"""Run reports: JSON serialization of statistics and benchmark series,
plus the clustering report table."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..core.stats import SearchStats
from .tables import format_table


def _jsonable(value: Any) -> Any:
    """Convert NumPy scalars/arrays so the structure is JSON serializable."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def run_report(stats: SearchStats, extra: dict[str, Any] | None = None) -> dict[str, Any]:
    """A flat, JSON-serializable report of one run.

    Stage-cache hit/miss counters (``stats.extras["cache"]``, present when a
    run had ``cache_dir`` configured) are additionally hoisted to flat
    ``cache_hits``/``cache_misses`` keys so warm-vs-cold runs diff cleanly.
    Likewise the process executor's per-lane map (``extras["process_lanes"]``)
    is hoisted to flat ``process_lane_count`` / ``process_lane_blocks`` /
    ``process_lane_discover_seconds`` keys (worker count, total blocks they
    computed, total discover-lane seconds), so scheduler comparisons diff on
    scalars; ``shm_peak_block_bytes`` / ``shm_total_bytes`` /
    ``peak_live_blocks`` already arrive flat through the extras merge.  The
    phase-timer map (``extras["phase_seconds"]``) is hoisted the same way,
    to flat ``phase_<name>_seconds`` keys, which is also what makes phase
    times visible to ``python -m repro.obs regress`` over saved reports.
    Query-mode runs (``extras["query"]``, see :mod:`repro.serve`) hoist to
    flat ``query_*`` keys (``query_n_queries`` / ``query_members`` /
    ``query_novel`` / ``query_db_sequences``) for the same reason.
    """
    report = _jsonable(stats.as_dict())
    phase_seconds = report.get("phase_seconds")
    if isinstance(phase_seconds, dict):
        for name, seconds in phase_seconds.items():
            report.setdefault(f"phase_{name}_seconds", float(seconds))
    cache = report.get("cache")
    if isinstance(cache, dict):
        report.setdefault("cache_hits", cache.get("hits", 0))
        report.setdefault("cache_misses", cache.get("misses", 0))
    lanes = report.get("process_lanes")
    if isinstance(lanes, dict):
        report.setdefault("process_lane_count", len(lanes))
        report.setdefault(
            "process_lane_blocks",
            sum(int(lane.get("blocks", 0)) for lane in lanes.values()),
        )
        report.setdefault(
            "process_lane_discover_seconds",
            sum(float(lane.get("discover_seconds", 0.0)) for lane in lanes.values()),
        )
    query = report.get("query")
    if isinstance(query, dict):
        for key in ("n_queries", "members", "novel", "db_sequences"):
            if key in query:
                report.setdefault(f"query_{key}", int(query[key]))
    if extra:
        report.update(_jsonable(extra))
    return report


def clustering_report(clustering) -> dict[str, Any]:
    """A JSON-serializable report of a clustering run.

    ``clustering`` is a :class:`repro.graph.api.ClusteringResult`
    (duck-typed).  Includes the per-iteration MCL trajectory, so a saved
    report can answer "when did pruning start discarding real mass".
    """
    report = _jsonable(clustering.summary())
    report["iterations"] = [_jsonable(it.as_dict()) for it in clustering.iterations]
    return report


def clustering_table(clustering) -> str:
    """Pretty-printed clustering report: summary lines + per-iteration table."""
    quality = clustering.quality
    lines = [
        "Clustering",
        f"  Method                        {clustering.method}"
        + (f" ({clustering.backend} backend)" if clustering.backend else ""),
        f"  Clusters                      {clustering.n_clusters:,}",
        f"  Converged                     {clustering.converged}"
        + (f" after {clustering.n_iterations} iterations" if clustering.iterations else ""),
        f"  Modularity                    {quality.modularity:.4f}",
        f"  Intra / inter mean score      {quality.intra_mean_score:.1f} / "
        f"{quality.inter_mean_score:.1f}",
        f"  Largest cluster               {quality.largest_cluster:,}",
        f"  Singleton clusters            {quality.singleton_clusters:,}",
    ]
    dist = getattr(clustering, "dist", None)
    if dist:
        hidden = dist.get("overlap_hidden_per_rank") or [0.0]
        lines += [
            f"  Distributed grid              {dist.get('grid')} "
            f"({dist.get('nprocs')} ranks"
            + (", overlapped schedule" if dist.get("overlap") else "")
            + ")",
            f"  Cluster comm volume           "
            f"{int(dist.get('charged_bytes_sent', 0)):,} B sent / "
            f"{int(dist.get('charged_bytes_received', 0)):,} B received",
            f"  Overlap hidden (max rank)     {max(hidden):.6f} s",
            f"  Stage total (modeled)         {dist.get('total_seconds', 0.0):.6f} s",
        ]
    if clustering.iterations:
        rows = [
            [it.iteration, it.nnz, it.flops, it.compression_factor,
             it.pruned_entries, it.pruned_mass, it.chaos]
            for it in clustering.iterations
        ]
        lines.append(
            format_table(
                ["iter", "nnz", "flops", "cf", "pruned", "pruned mass", "chaos"],
                rows,
                precision=4,
                indent="  ",
            )
        )
    return "\n".join(lines)


def save_json(data: Any, path: str | os.PathLike) -> None:
    """Write a JSON document (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(data), indent=2, sort_keys=True))


def load_json(path: str | os.PathLike) -> Any:
    """Read a JSON document."""
    return json.loads(Path(path).read_text())
