"""Calibration of workload profiles from measured pipeline runs.

The analytic model needs dataset-dependent coefficients — how many candidate
pairs, alignments, DP cells and SpGEMM flops a dataset of ``n`` sequences
generates.  Rather than copying those from the paper, they are *measured* on
a small synthetic run of the actual pipeline and extrapolated with the same
quadratic/linear growth rules the paper uses, so the projection is anchored
in the reproduction's own behaviour (and changes when the pipeline changes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import SearchResult
from .profile import WorkloadProfile


@dataclass(frozen=True)
class CalibrationCoefficients:
    """Per-dataset-size coefficients extracted from a measured run.

    All "per_pair" quantities are normalized by ``n_sequences**2`` (quadratic
    growth); "per_sequence" quantities by ``n_sequences`` (linear growth).
    """

    candidates_per_pair: float
    alignments_per_pair: float
    output_per_pair: float
    cells_per_alignment: float
    flops_per_candidate: float
    kmer_nnz_per_sequence: float
    avg_length: float

    def profile_for(self, n_sequences: float, num_blocks: int = 64) -> WorkloadProfile:
        """Build a workload profile for a dataset of ``n_sequences``."""
        pairs = float(n_sequences) ** 2
        candidates = self.candidates_per_pair * pairs
        alignments = self.alignments_per_pair * pairs
        return WorkloadProfile(
            n_sequences=float(n_sequences),
            avg_length=self.avg_length,
            candidates=candidates,
            alignments=alignments,
            cells=alignments * self.cells_per_alignment,
            spgemm_flops=candidates * self.flops_per_candidate,
            kmer_nnz=self.kmer_nnz_per_sequence * n_sequences,
            output_pairs=self.output_per_pair * pairs,
            num_blocks=num_blocks,
        )


def calibrate_profile(result: SearchResult) -> CalibrationCoefficients:
    """Extract calibration coefficients from a completed pipeline run."""
    stats = result.stats
    n = max(stats.n_sequences, 1)
    pairs = float(n) ** 2
    alignments = max(stats.alignments_performed, 1)
    candidates = max(stats.candidates_discovered, 1)
    lengths = None
    avg_length = stats.extras.get("avg_length", 0.0)
    if not avg_length:
        avg_length = result.kmer_info.kmer_occurrences / n + result.params.kmer_length - 1
    return CalibrationCoefficients(
        candidates_per_pair=candidates / pairs,
        alignments_per_pair=alignments / pairs,
        output_per_pair=stats.similar_pairs / pairs,
        cells_per_alignment=stats.alignment_cells / alignments,
        flops_per_candidate=max(stats.spgemm_flops, 1) / candidates,
        kmer_nnz_per_sequence=result.kmer_info.nnz / n,
        avg_length=float(avg_length),
    )
