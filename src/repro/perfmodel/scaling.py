"""Strong- and weak-scaling series generation (Fig. 8, Fig. 9, Table III)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .analytic import AnalyticModel, ComponentTimes
from .profile import WorkloadProfile


@dataclass(frozen=True)
class ScalingPoint:
    """One node count of a scaling series, with per-component efficiencies."""

    nodes: int
    times: ComponentTimes
    speedup_total: float
    efficiency_total: float
    efficiency_per_component: dict[str, float]
    n_sequences: float
    alignments: float

    def as_dict(self) -> dict[str, float]:
        """Flat record for tables/JSON."""
        out = {
            "nodes": self.nodes,
            "n_sequences": self.n_sequences,
            "alignments": self.alignments,
            "speedup_total": self.speedup_total,
            "efficiency_total": self.efficiency_total,
        }
        out.update({f"time_{k}": v for k, v in self.times.as_dict().items() if k != "nodes"})
        out.update({f"eff_{k}": v for k, v in self.efficiency_per_component.items()})
        return out


_COMPONENTS = ("align", "spgemm", "sparse_all", "io", "total")


def _component_value(times: ComponentTimes, name: str) -> float:
    return {
        "align": times.align,
        "spgemm": times.spgemm,
        "sparse_all": times.sparse_all,
        "io": times.io,
        "total": times.total,
    }[name]


def strong_scaling_series(
    profile: WorkloadProfile,
    node_counts: list[int],
    model: AnalyticModel,
) -> list[ScalingPoint]:
    """Fixed problem size, increasing node counts (Fig. 8).

    Efficiencies are relative to the smallest node count in the list.
    """
    if not node_counts:
        return []
    node_counts = sorted(node_counts)
    base_nodes = node_counts[0]
    base_times = model.component_times(profile, base_nodes)
    points = []
    for nodes in node_counts:
        times = model.component_times(profile, nodes)
        speedup = base_times.total / times.total if times.total > 0 else 0.0
        ideal = nodes / base_nodes
        eff = {}
        for comp in _COMPONENTS:
            base_val = _component_value(base_times, comp)
            val = _component_value(times, comp)
            eff[comp] = (base_val / val) / ideal if val > 0 and ideal > 0 else 0.0
        points.append(
            ScalingPoint(
                nodes=nodes,
                times=times,
                speedup_total=speedup,
                efficiency_total=eff["total"],
                efficiency_per_component=eff,
                n_sequences=profile.n_sequences,
                alignments=profile.alignments,
            )
        )
    return points


def weak_scaling_series(
    base_profile: WorkloadProfile,
    node_counts: list[int],
    model: AnalyticModel,
    base_nodes: int | None = None,
) -> list[ScalingPoint]:
    """Work per node held constant: sequences grow with sqrt(nodes) (Fig. 9).

    Because alignments (and most sparse flops) grow quadratically with the
    sequence count, scaling sequences by ``sqrt(x)`` when nodes scale by ``x``
    keeps the per-node workload fixed — exactly the paper's §VIII-B setup
    (20M sequences at 25 nodes up to 112M at 784).
    """
    if not node_counts:
        return []
    node_counts = sorted(node_counts)
    if base_nodes is None:
        base_nodes = node_counts[0]
    base_scaled = base_profile.scaled_to(
        base_profile.n_sequences * np.sqrt(base_nodes / node_counts[0])
    )
    base_times = model.component_times(base_scaled, base_nodes)
    points = []
    for nodes in node_counts:
        n_sequences = base_profile.n_sequences * np.sqrt(nodes / base_nodes)
        profile = base_profile.scaled_to(n_sequences)
        times = model.component_times(profile, nodes)
        eff = {}
        for comp in _COMPONENTS:
            base_val = _component_value(base_times, comp)
            val = _component_value(times, comp)
            eff[comp] = base_val / val if val > 0 else 0.0
        points.append(
            ScalingPoint(
                nodes=nodes,
                times=times,
                speedup_total=base_times.total / times.total if times.total else 0.0,
                efficiency_total=eff["total"],
                efficiency_per_component=eff,
                n_sequences=n_sequences,
                alignments=profile.alignments,
            )
        )
    return points
