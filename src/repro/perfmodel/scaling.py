"""Strong- and weak-scaling series generation (Fig. 8, Fig. 9, Table III),
plus strong-scaling projections for the distributed clustering stage."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.cluster import summit_subset
from ..mpi.process_grid import is_perfect_square
from .analytic import AnalyticModel, ComponentTimes, blocked_summa_communication_seconds
from .profile import WorkloadProfile


@dataclass(frozen=True)
class ScalingPoint:
    """One node count of a scaling series, with per-component efficiencies."""

    nodes: int
    times: ComponentTimes
    speedup_total: float
    efficiency_total: float
    efficiency_per_component: dict[str, float]
    n_sequences: float
    alignments: float

    def as_dict(self) -> dict[str, float]:
        """Flat record for tables/JSON."""
        out = {
            "nodes": self.nodes,
            "n_sequences": self.n_sequences,
            "alignments": self.alignments,
            "speedup_total": self.speedup_total,
            "efficiency_total": self.efficiency_total,
        }
        out.update({f"time_{k}": v for k, v in self.times.as_dict().items() if k != "nodes"})
        out.update({f"eff_{k}": v for k, v in self.efficiency_per_component.items()})
        return out


_COMPONENTS = ("align", "spgemm", "sparse_all", "io", "total")


def _component_value(times: ComponentTimes, name: str) -> float:
    return {
        "align": times.align,
        "spgemm": times.spgemm,
        "sparse_all": times.sparse_all,
        "io": times.io,
        "total": times.total,
    }[name]


@dataclass(frozen=True)
class ClusterScalingPoint:
    """One node count of a cluster-stage strong-scaling projection."""

    nodes: int
    expand_seconds: float
    prune_seconds: float
    comm_seconds: float
    total_seconds: float
    speedup_total: float
    efficiency_total: float

    def as_dict(self) -> dict[str, float]:
        """Flat record for tables/JSON."""
        return {
            "nodes": self.nodes,
            "expand_seconds": self.expand_seconds,
            "prune_seconds": self.prune_seconds,
            "comm_seconds": self.comm_seconds,
            "total_seconds": self.total_seconds,
            "speedup_total": self.speedup_total,
            "efficiency_total": self.efficiency_total,
        }


def cluster_strong_scaling_series(
    expand_flops: float,
    iterate_bytes: float,
    n_iterations: int,
    node_counts: list[int],
    overlap: bool = False,
    products_per_second: float = 2.0e7,
    row_op_passes: float = 4.0,
    cluster_factory=None,
) -> list[ClusterScalingPoint]:
    """Strong-scaling projection of the distributed MCL cluster stage.

    Takes the stage's measured workload — total expansion flops
    (``DistMclResult.total_flops`` or ``MclResult.total_flops``), the
    representative per-iteration iterate footprint in triplet bytes, and the
    iteration count — and projects per-component times over ``node_counts``
    (each a perfect square, the 2D grid requirement):

    * **expand** — flops over the aggregate sparse throughput;
    * **prune** — ``row_op_passes`` streaming passes per iteration over the
      iterate, at the aggregate memory bandwidth;
    * **comm** — the blocked-SUMMA broadcast cost of §VI-A with
      ``br = sqrt(p), bc = 1`` (the stored-row-stripe blocking distributed
      MCL uses), per iteration;
    * **total** — ``comm + max(expand, prune)`` under the overlapped
      schedule (expansion hides behind pruning, §VI-C applied to the
      cluster stage), ``comm + expand + prune`` otherwise.

    Efficiencies are relative to the smallest node count, like
    :func:`strong_scaling_series`.
    """
    if not node_counts:
        return []
    for nodes in node_counts:
        if not is_perfect_square(nodes):
            raise ValueError(
                f"cluster-stage node counts must be perfect squares, got {nodes}"
            )
    node_counts = sorted(node_counts)

    def _times(nodes: int) -> tuple[float, float, float, float]:
        cluster = cluster_factory(nodes) if cluster_factory is not None else summit_subset(nodes)
        expand = expand_flops / (nodes * products_per_second)
        prune = (
            row_op_passes * n_iterations * iterate_bytes
            / (nodes * cluster.node.memory_bandwidth_gbps * 1e9)
        )
        dim = int(np.sqrt(nodes) + 0.5)
        comm = n_iterations * blocked_summa_communication_seconds(
            nodes, iterate_bytes / nodes, br=dim, bc=1, network=cluster.network
        )
        overlapped = max(expand, prune) if overlap else expand + prune
        return expand, prune, comm, overlapped + comm

    base_nodes = node_counts[0]
    times = [_times(nodes) for nodes in node_counts]
    base_total = times[0][3]
    points = []
    for nodes, (expand, prune, comm, total) in zip(node_counts, times):
        speedup = base_total / total if total > 0 else 0.0
        ideal = nodes / base_nodes
        points.append(
            ClusterScalingPoint(
                nodes=nodes,
                expand_seconds=expand,
                prune_seconds=prune,
                comm_seconds=comm,
                total_seconds=total,
                speedup_total=speedup,
                efficiency_total=speedup / ideal if ideal > 0 else 0.0,
            )
        )
    return points


def strong_scaling_series(
    profile: WorkloadProfile,
    node_counts: list[int],
    model: AnalyticModel,
) -> list[ScalingPoint]:
    """Fixed problem size, increasing node counts (Fig. 8).

    Efficiencies are relative to the smallest node count in the list.
    """
    if not node_counts:
        return []
    node_counts = sorted(node_counts)
    base_nodes = node_counts[0]
    base_times = model.component_times(profile, base_nodes)
    points = []
    for nodes in node_counts:
        times = model.component_times(profile, nodes)
        speedup = base_times.total / times.total if times.total > 0 else 0.0
        ideal = nodes / base_nodes
        eff = {}
        for comp in _COMPONENTS:
            base_val = _component_value(base_times, comp)
            val = _component_value(times, comp)
            eff[comp] = (base_val / val) / ideal if val > 0 and ideal > 0 else 0.0
        points.append(
            ScalingPoint(
                nodes=nodes,
                times=times,
                speedup_total=speedup,
                efficiency_total=eff["total"],
                efficiency_per_component=eff,
                n_sequences=profile.n_sequences,
                alignments=profile.alignments,
            )
        )
    return points


def weak_scaling_series(
    base_profile: WorkloadProfile,
    node_counts: list[int],
    model: AnalyticModel,
    base_nodes: int | None = None,
) -> list[ScalingPoint]:
    """Work per node held constant: sequences grow with sqrt(nodes) (Fig. 9).

    Because alignments (and most sparse flops) grow quadratically with the
    sequence count, scaling sequences by ``sqrt(x)`` when nodes scale by ``x``
    keeps the per-node workload fixed — exactly the paper's §VIII-B setup
    (20M sequences at 25 nodes up to 112M at 784).
    """
    if not node_counts:
        return []
    node_counts = sorted(node_counts)
    if base_nodes is None:
        base_nodes = node_counts[0]
    base_scaled = base_profile.scaled_to(
        base_profile.n_sequences * np.sqrt(base_nodes / node_counts[0])
    )
    base_times = model.component_times(base_scaled, base_nodes)
    points = []
    for nodes in node_counts:
        n_sequences = base_profile.n_sequences * np.sqrt(nodes / base_nodes)
        profile = base_profile.scaled_to(n_sequences)
        times = model.component_times(profile, nodes)
        eff = {}
        for comp in _COMPONENTS:
            base_val = _component_value(base_times, comp)
            val = _component_value(times, comp)
            eff[comp] = base_val / val if val > 0 else 0.0
        points.append(
            ScalingPoint(
                nodes=nodes,
                times=times,
                speedup_total=base_times.total / times.total if times.total else 0.0,
                efficiency_total=eff["total"],
                efficiency_per_component=eff,
                n_sequences=n_sequences,
                alignments=profile.alignments,
            )
        )
    return points
