"""Analytic component-time model.

Combines a :class:`repro.perfmodel.profile.WorkloadProfile` with the hardware
model to predict, for a given node count:

* **align** — DP cells over the aggregate GPU throughput, degraded by a
  batch-fill utilization term (small per-rank batches underutilize the
  device) and the measured-at-production alignment imbalance (7.1%,
  Table IV);
* **spgemm** — semiring flops over the aggregate node sparse throughput
  (3.1% imbalance) plus the blocked-SUMMA broadcast cost of §VI-A:
  ``2 alpha (br bc) sqrt(p) log sqrt(p) + beta s (br+bc) sqrt(p) log sqrt(p)``;
* **sparse_other** — streaming passes over the k-mer matrix and the overlap
  blocks (memory-bandwidth bound);
* **io** — parallel read of the FASTA input and write of the triplet output;
* **cwait** — the residual wait of the non-blocking sequence exchange.

The same machinery evaluates both load-balancing schemes (the triangularity
scheme computes roughly half the SpGEMM flops but suffers higher alignment
imbalance in the partial blocks) and the pre-blocking overlap, so strong and
weak scaling series, the overhead table and the production run can all be
regenerated from one model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.cluster import ClusterSpec, summit_subset
from ..hardware.topology import NetworkSpec
from .profile import WorkloadProfile


def summa_communication_seconds(
    p: int, local_nnz_bytes: float, network: NetworkSpec
) -> float:
    """Plain 2D Sparse SUMMA broadcast cost: ``2(alpha + beta s) sqrt(p) log2 sqrt(p)``."""
    if p <= 1:
        return 0.0
    sqrt_p = np.sqrt(p)
    log_term = max(np.log2(sqrt_p), 1.0)
    return float(
        2.0 * network.alpha_s * sqrt_p * log_term
        + 2.0 * network.beta_s_per_byte * local_nnz_bytes * sqrt_p * log_term
    )


def blocked_summa_communication_seconds(
    p: int, local_nnz_bytes: float, br: int, bc: int, network: NetworkSpec
) -> float:
    """Blocked SUMMA broadcast cost (§VI-A):

    ``2 alpha (br bc) sqrt(p) log sqrt(p) + beta s (br + bc) sqrt(p) log sqrt(p)``.
    """
    if p <= 1:
        return 0.0
    sqrt_p = np.sqrt(p)
    log_term = max(np.log2(sqrt_p), 1.0)
    return float(
        2.0 * network.alpha_s * (br * bc) * sqrt_p * log_term
        + network.beta_s_per_byte * local_nnz_bytes * (br + bc) * sqrt_p * log_term
    )


@dataclass(frozen=True)
class ComponentTimes:
    """Predicted per-component times of one configuration (seconds)."""

    nodes: int
    align: float
    spgemm: float
    sparse_other: float
    comm: float
    io: float
    cwait: float
    pre_blocking: bool = False

    @property
    def sparse_all(self) -> float:
        """All sparse work: the overlap SpGEMM plus the streaming passes."""
        return self.spgemm + self.sparse_other

    @property
    def total(self) -> float:
        """Total runtime under the configured schedule.

        With pre-blocking, the SpGEMM hides behind alignment (§VI-C) and only
        the maximum of the two is paid.
        """
        if self.pre_blocking:
            overlapped = max(self.align, self.spgemm)
        else:
            overlapped = self.align + self.spgemm
        return overlapped + self.sparse_other + self.comm + self.io + self.cwait

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary (for tables and JSON reports)."""
        return {
            "nodes": self.nodes,
            "align": self.align,
            "spgemm": self.spgemm,
            "sparse_other": self.sparse_other,
            "sparse_all": self.sparse_all,
            "comm": self.comm,
            "io": self.io,
            "cwait": self.cwait,
            "total": self.total,
        }


@dataclass
class AnalyticModel:
    """Predicts component times for a workload profile on a Summit-like cluster.

    Parameters
    ----------
    load_balancing:
        ``"index"`` or ``"triangularity"``; the triangularity scheme computes
        roughly ``sparse_savings`` fewer SpGEMM flops but pays
        ``triangularity_align_imbalance`` alignment imbalance instead of the
        index scheme's ``index_align_imbalance``.
    pre_blocking:
        Overlap SpGEMM with alignment (with the §VI-C contention factors).
    gpu_fill_cells:
        Per-rank cell count at which the GPUs reach half of their peak
        utilization (models the batch-fill / pipeline-drain losses that erode
        strong-scaling efficiency as per-rank work shrinks).
    """

    load_balancing: str = "triangularity"
    pre_blocking: bool = True
    index_align_imbalance: float = 0.05
    triangularity_align_imbalance: float = 0.12
    index_sparse_imbalance: float = 0.03
    triangularity_sparse_imbalance: float = 0.08
    sparse_savings: float = 0.45
    align_contention: float = 1.13
    sparse_contention: float = 1.30
    gpu_fill_cells: float = 8.0e12
    #: effective semiring partial products processed per second per node.
    #: This folds in all the memory traffic of the hash SpGEMM and the
    #: per-block merging; calibrated so the production-run SpGEMM lands near
    #: the paper's 2.06 hours (see EXPERIMENTS.md).
    sparse_products_per_second: float = 2.0e7
    #: fixed overhead of one local SUMMA multiply (symbolic phase, buffer
    #: allocation); each rank performs sqrt(p) * num_blocks of them, which is
    #: the "split sparse computations" penalty of §VI-A.
    per_multiply_overhead_s: float = 0.1
    bytes_per_overlap_element: float = 24.0
    output_bytes_per_pair: float = 26.0
    input_bytes_per_residue: float = 1.1
    cluster_factory: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.load_balancing not in ("index", "triangularity"):
            raise ValueError("load_balancing must be 'index' or 'triangularity'")

    # ------------------------------------------------------------------ helpers
    def _cluster(self, nodes: int) -> ClusterSpec:
        if self.cluster_factory is not None:
            return self.cluster_factory(nodes)  # type: ignore[operator]
        return summit_subset(nodes)

    def _align_imbalance(self) -> float:
        return (
            self.triangularity_align_imbalance
            if self.load_balancing == "triangularity"
            else self.index_align_imbalance
        )

    def _sparse_imbalance(self) -> float:
        return (
            self.triangularity_sparse_imbalance
            if self.load_balancing == "triangularity"
            else self.index_sparse_imbalance
        )

    def _sparse_flops(self, profile: WorkloadProfile) -> float:
        if self.load_balancing == "triangularity":
            return profile.spgemm_flops * (1.0 - self.sparse_savings)
        return profile.spgemm_flops

    # ------------------------------------------------------------------ prediction
    def component_times(self, profile: WorkloadProfile, nodes: int) -> ComponentTimes:
        """Predict the component times of running ``profile`` on ``nodes`` nodes."""
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        cluster = self._cluster(nodes)
        node = cluster.node
        network = cluster.network

        # ---- alignment on the GPUs
        cells_per_node = profile.cells / nodes
        fill = cells_per_node / (cells_per_node + self.gpu_fill_cells)
        effective_gcups = node.node_gcups * max(fill, 1e-6)
        align = cells_per_node / (effective_gcups * 1e9)
        align *= 1.0 + self._align_imbalance()

        # ---- overlap SpGEMM on the CPUs
        flops_per_node = self._sparse_flops(profile) / nodes
        br = bc = max(int(round(np.sqrt(profile.num_blocks))), 1)
        local_multiplies = np.sqrt(nodes) * profile.num_blocks
        spgemm = (
            flops_per_node / self.sparse_products_per_second
            + local_multiplies * self.per_multiply_overhead_s
        )
        spgemm *= 1.0 + self._sparse_imbalance()
        local_a_bytes = profile.kmer_nnz * 20.0 / nodes
        comm = blocked_summa_communication_seconds(nodes, local_a_bytes, br, bc, network)

        # ---- other sparse work: streaming over the k-mer matrix and overlap blocks
        overlap_bytes = profile.candidates * self.bytes_per_overlap_element / nodes
        kmer_bytes = profile.kmer_nnz * 20.0 / nodes
        sparse_other = (overlap_bytes + 2.0 * kmer_bytes) / (
            node.memory_bandwidth_gbps * 1e9
        )

        # ---- IO: read FASTA, write triplets
        input_bytes = profile.n_sequences * profile.avg_length * self.input_bytes_per_residue
        output_bytes = profile.output_pairs * self.output_bytes_per_pair
        io = cluster.io_seconds(int(input_bytes), nodes) + cluster.io_seconds(
            int(output_bytes), nodes
        )

        # ---- residual sequence-exchange wait
        seq_bytes_per_node = profile.n_sequences * profile.avg_length / max(np.sqrt(nodes), 1.0)
        cwait = network.point_to_point_seconds(int(min(seq_bytes_per_node, 1 << 26))) * np.log2(
            max(nodes, 2)
        )

        if self.pre_blocking:
            align *= self.align_contention
            spgemm *= self.sparse_contention
        return ComponentTimes(
            nodes=nodes,
            align=float(align),
            spgemm=float(spgemm),
            sparse_other=float(sparse_other),
            comm=float(comm),
            io=float(io),
            cwait=float(cwait),
            pre_blocking=self.pre_blocking,
        )

    # ------------------------------------------------------------------ headline metrics
    def production_metrics(self, profile: WorkloadProfile, nodes: int) -> dict[str, float]:
        """Table-IV style headline numbers for a configuration."""
        times = self.component_times(profile, nodes)
        cluster = self._cluster(nodes)
        kernel_seconds = profile.cells / (cluster.node.node_gcups * 1e9 * nodes)
        return {
            "nodes": nodes,
            "runtime_hours": times.total / 3600.0,
            "alignments_per_second": profile.alignments / times.total,
            "tcups": profile.cells / max(kernel_seconds, 1e-9) / 1e12,
            "align_hours": times.align / 3600.0,
            "spgemm_hours": times.spgemm / 3600.0,
            "sparse_all_hours": times.sparse_all / 3600.0,
            "io_minutes": times.io / 60.0,
            "cwait_minutes": times.cwait / 60.0,
            "io_percent": 100.0 * times.io / times.total,
            "cwait_percent": 100.0 * times.cwait / times.total,
            "total": times.total,
        }
