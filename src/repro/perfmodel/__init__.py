"""Analytic performance model for paper-scale projection.

The functional pipeline runs on thousands of synthetic sequences; the paper's
evaluation runs on 20-405 *million* sequences and up to 3364 Summit nodes.
This subpackage bridges the gap: a workload profile (how many candidates,
alignments, DP cells, sparse flops and bytes a dataset of a given size
produces) is combined with the hardware model (GPU GCUPS, node sparse
throughput, alpha-beta network, parallel file system) and the SUMMA
communication formulas of §VI-A to predict component times at any node
count.  The scaling benchmarks use it to regenerate the strong-scaling
(Fig. 8), weak-scaling (Fig. 9 / Table III), overhead (Table II) and
production-run (Table IV) numbers, and the calibration module derives profile
coefficients from actual small-scale pipeline runs so the projection is
anchored in measured behaviour rather than copied from the paper.
"""

from .profile import WorkloadProfile
from .analytic import (
    AnalyticModel,
    ComponentTimes,
    summa_communication_seconds,
    blocked_summa_communication_seconds,
)
from .calibration import calibrate_profile, CalibrationCoefficients
from .scaling import strong_scaling_series, weak_scaling_series, ScalingPoint

__all__ = [
    "WorkloadProfile",
    "AnalyticModel",
    "ComponentTimes",
    "summa_communication_seconds",
    "blocked_summa_communication_seconds",
    "calibrate_profile",
    "CalibrationCoefficients",
    "strong_scaling_series",
    "weak_scaling_series",
    "ScalingPoint",
]
