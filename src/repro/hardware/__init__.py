"""Hardware models: Summit-like nodes, GPUs, and the cluster/network.

The reproduction cannot run on Summit (4608 IBM AC922 nodes, 2×22-core
POWER9 + 6×V100 per node, dual-rail EDR InfiniBand fat tree), so these specs
feed two things instead:

* the **simulated runtime** (:mod:`repro.mpi`) uses the network parameters for
  its alpha-beta communication cost model and the node parameters to decide
  how many CPU threads / simulated GPU workers a virtual rank gets;
* the **analytic performance model** (:mod:`repro.perfmodel`) uses the GPU
  throughput (GCUPS) and CPU sparse throughput to project paper-scale runs.
"""

from .gpu import GpuSpec, V100
from .node import NodeSpec, SUMMIT_NODE
from .topology import NetworkSpec, SUMMIT_NETWORK
from .cluster import ClusterSpec, SUMMIT, summit_subset

__all__ = [
    "GpuSpec",
    "V100",
    "NodeSpec",
    "SUMMIT_NODE",
    "NetworkSpec",
    "SUMMIT_NETWORK",
    "ClusterSpec",
    "SUMMIT",
    "summit_subset",
]
