"""Cluster model: a set of nodes plus a network and a parallel file system."""

from __future__ import annotations

from dataclasses import dataclass, field

from .node import NodeSpec, SUMMIT_NODE
from .topology import NetworkSpec, SUMMIT_NETWORK


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster.

    Attributes
    ----------
    nodes:
        Number of compute nodes available.
    node:
        Per-node spec.
    network:
        Interconnect spec.
    filesystem_gbps:
        Aggregate parallel-filesystem bandwidth in GB/s (Summit's Alpine GPFS
        delivers ~2.5 TB/s peak; PASTIS uses parallel MPI-IO against it).
    filesystem_latency_s:
        Per-operation file system latency.
    """

    name: str = "summit"
    nodes: int = 4608
    node: NodeSpec = field(default_factory=lambda: SUMMIT_NODE)
    network: NetworkSpec = field(default_factory=lambda: SUMMIT_NETWORK)
    filesystem_gbps: float = 2500.0
    filesystem_latency_s: float = 1.0e-3

    @property
    def total_gpus(self) -> int:
        """Total accelerators in the cluster."""
        return self.nodes * self.node.gpus_per_node

    @property
    def total_cores(self) -> int:
        """Total usable CPU cores in the cluster."""
        return self.nodes * self.node.cores

    def io_seconds(self, nbytes: int, nodes_used: int | None = None) -> float:
        """Modelled parallel-IO time for reading/writing ``nbytes``.

        Bandwidth scales with the number of participating nodes up to the file
        system's aggregate limit (each node can inject at roughly its network
        injection bandwidth).
        """
        nodes_used = self.nodes if nodes_used is None else nodes_used
        per_node_gbps = min(self.network.injection_gbps, 5.0)  # GPFS client-side cap
        achievable = min(self.filesystem_gbps, nodes_used * per_node_gbps)
        return self.filesystem_latency_s + nbytes / (achievable * 1e9)


#: The full Summit system.
SUMMIT = ClusterSpec()


def summit_subset(nodes: int) -> ClusterSpec:
    """A Summit allocation of ``nodes`` nodes (e.g. 3364 for the production run)."""
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    return ClusterSpec(
        name=f"summit-{nodes}",
        nodes=nodes,
        node=SUMMIT.node,
        network=SUMMIT.network,
        filesystem_gbps=SUMMIT.filesystem_gbps,
        filesystem_latency_s=SUMMIT.filesystem_latency_s,
    )
