"""Interconnect model: alpha-beta parameters and a fat-tree bisection model.

The paper analyses SUMMA communication with the classic alpha-beta model
(message startup latency ``alpha`` and per-word transfer time ``beta``) and
notes that Summit's dual-rail EDR InfiniBand non-blocking fat tree keeps the
collectives from becoming the bottleneck.  These parameters feed both the
simulated collectives in :mod:`repro.mpi.collectives` and the analytic cost
formulas in :mod:`repro.perfmodel.analytic`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NetworkSpec:
    """Network cost-model parameters.

    Attributes
    ----------
    alpha_s:
        Message startup latency in seconds.
    beta_s_per_byte:
        Per-byte transfer time in seconds (inverse of per-link injection
        bandwidth).
    injection_gbps:
        Per-node injection bandwidth in GB/s (dual-rail EDR = ~25 GB/s).
    bisection_factor:
        Fraction of full bisection bandwidth available (1.0 for a
        non-blocking fat tree).
    """

    name: str = "summit-ib-fat-tree"
    alpha_s: float = 2.0e-6
    beta_s_per_byte: float = 1.0 / 25e9
    injection_gbps: float = 25.0
    bisection_factor: float = 1.0

    def point_to_point_seconds(self, nbytes: int) -> float:
        """Cost of a single point-to-point message."""
        return self.alpha_s + nbytes * self.beta_s_per_byte

    def tree_broadcast_seconds(self, nbytes: int, participants: int) -> float:
        """Cost of a binomial-tree broadcast among ``participants`` ranks.

        This is the ``(alpha + beta*s) * log2(p)`` term used in the paper's
        SUMMA cost expression.
        """
        if participants <= 1:
            return 0.0
        stages = float(np.ceil(np.log2(participants)))
        return stages * (self.alpha_s + nbytes * self.beta_s_per_byte)

    def allgather_seconds(self, nbytes_per_rank: int, participants: int) -> float:
        """Cost of a ring allgather (bandwidth-dominated)."""
        if participants <= 1:
            return 0.0
        return (participants - 1) * (
            self.alpha_s + nbytes_per_rank * self.beta_s_per_byte
        )

    def alltoallv_seconds(self, total_bytes_sent: int, participants: int) -> float:
        """Cost of a personalized all-to-all (pairwise exchange model)."""
        if participants <= 1:
            return 0.0
        per_partner = total_bytes_sent / max(participants - 1, 1)
        return (participants - 1) * (self.alpha_s + per_partner * self.beta_s_per_byte)


#: Summit dual-rail EDR InfiniBand, non-blocking fat tree.
SUMMIT_NETWORK = NetworkSpec()
