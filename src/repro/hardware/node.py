"""Compute-node model (Summit AC922-like)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .gpu import GpuSpec, V100


@dataclass(frozen=True)
class NodeSpec:
    """One compute node.

    Attributes
    ----------
    cores:
        Usable CPU cores per node (the paper uses 42 of the 44 SMT-1 cores,
        leaving 2 for the OS).
    cpu_memory_gb:
        Host memory per node.
    gpus_per_node:
        Number of accelerators.
    gpu:
        GPU spec.
    sparse_gflops:
        Effective throughput of memory-bound semiring SpGEMM in "giga useful
        partial products"/s per node.  This is a calibrated model constant,
        not a hardware peak: it folds in the hash/merge memory traffic and is
        set so the functional pipeline's align:sparse time ratio on the small
        synthetic workloads resembles the paper's ~2:1 (the paper-scale
        projection uses its own calibrated rate, see
        :class:`repro.perfmodel.analytic.AnalyticModel`).
    memory_bandwidth_gbps:
        Aggregate host memory bandwidth, the real limiter of SpGEMM.
    """

    name: str = "AC922"
    cores: int = 42
    cpu_memory_gb: float = 512.0
    gpus_per_node: int = 6
    gpu: GpuSpec = field(default_factory=lambda: V100)
    sparse_gflops: float = 0.5
    memory_bandwidth_gbps: float = 340.0

    @property
    def total_gpu_memory_gb(self) -> float:
        """Aggregate accelerator memory on the node."""
        return self.gpus_per_node * self.gpu.memory_gb

    @property
    def node_gcups(self) -> float:
        """Aggregate alignment throughput of all GPUs on the node."""
        return self.gpus_per_node * self.gpu.gcups


#: Summit node: 2x22-core POWER9 (42 usable), 512 GB, 6x V100.
SUMMIT_NODE = NodeSpec()
