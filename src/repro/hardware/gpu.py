"""GPU device model.

ADEPT on a V100 sustains on the order of tens of GCUPS (billions of DP cell
updates per second) for protein Smith–Waterman; the paper's production run
reports a peak of 176.3 TCUPS over 20,184 GPUs, i.e. ~8.7 GCUPS per GPU
sustained across the whole run.  The :class:`GpuSpec` captures that
throughput plus the batching overheads (host-device transfer, kernel launch)
so the simulated ADEPT driver can attribute a realistic *modelled* kernel
time to each batch while the actual computation runs on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Throughput model of one GPU used for batched alignment.

    Attributes
    ----------
    name:
        Device name.
    gcups:
        Sustained giga cell-updates per second of the Smith–Waterman kernel.
    memory_gb:
        Device memory (bounds the batch size the driver may form).
    transfer_gbps:
        Host-to-device bandwidth in GB/s (PCIe/NVLink), used for the batch
        packing/transfer overhead.
    kernel_launch_us:
        Fixed per-batch overhead in microseconds.
    """

    name: str = "V100"
    gcups: float = 9.0
    memory_gb: float = 16.0
    transfer_gbps: float = 50.0
    kernel_launch_us: float = 20.0

    def kernel_seconds(self, cells: int) -> float:
        """Modelled forward-scoring kernel time for ``cells`` DP cell updates."""
        return cells / (self.gcups * 1e9)

    def transfer_seconds(self, bytes_moved: int) -> float:
        """Modelled host-device transfer time."""
        return bytes_moved / (self.transfer_gbps * 1e9)

    def batch_seconds(self, cells: int, bytes_moved: int) -> float:
        """Total modelled time for one batch (launch + transfer + kernel)."""
        return (
            self.kernel_launch_us * 1e-6
            + self.transfer_seconds(bytes_moved)
            + self.kernel_seconds(cells)
        )


#: NVIDIA Tesla V100 as found on Summit (6 per node, NVLink-attached).  The
#: production run sustains ~8.7 GCUPS per GPU end to end (176.3 TCUPS over
#: 20,184 GPUs); 10.0 here is the kernel-only rate before the imbalance and
#: pre-blocking contention factors the models apply on top.
V100 = GpuSpec(name="V100", gcups=10.0, memory_gb=16.0, transfer_gbps=50.0, kernel_launch_us=20.0)

#: A hypothetical Hopper-class GPU with DPX instructions (§IX of the paper
#: projects up to 40x speedup of the alignment kernel).
HOPPER_DPX = GpuSpec(
    name="H100-DPX", gcups=9.0 * 40.0, memory_gb=80.0, transfer_gbps=200.0, kernel_launch_us=15.0
)
