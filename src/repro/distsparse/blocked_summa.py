"""Blocked 2D Sparse SUMMA — the paper's central memory innovation (§VI-A).

The overlap matrix of a many-against-many search is far too large to hold in
memory at once (the production run discovers 95.9 *trillion* candidate
elements).  The blocked SUMMA therefore forms the output in ``br x bc``
blocks: output block ``C(r, c)`` is computed by a full 2D Sparse SUMMA over
the row stripe ``A(r, *)`` and the column stripe ``B(*, c)``, after which the
block can be aligned and *discarded* before the next block is formed
("incremental similarity search").  Peak memory is then bounded by one output
block plus the stripes, at the price of broadcasting the inputs ``br``/``bc``
times — the communication trade-off quantified by the paper's cost formula

``2 alpha (br*bc) sqrt(p) log sqrt(p)  +  beta s (br + bc) sqrt(p) log sqrt(p)``.

:class:`BlockedSpGemm` exposes the blocks as a generator so the caller (the
pipeline, possibly with pre-blocking) controls how many blocks are alive at
any time; it also tracks the peak per-rank memory so the memory/blocking
trade-off (Fig. 5) can be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..sparse.semiring import Semiring
from ..sparse.spgemm import SpGemmStats
from .distmat import DistSparseMatrix
from .summa import SummaResult, summa


@dataclass(frozen=True)
class BlockSchedule:
    """The ``br x bc`` blocking of the output matrix.

    Attributes
    ----------
    n_rows, n_cols:
        Global output dimensions.
    br, bc:
        Row and column blocking factors.
    """

    n_rows: int
    n_cols: int
    br: int
    bc: int

    def __post_init__(self) -> None:
        if self.br <= 0 or self.bc <= 0:
            raise ValueError("blocking factors must be positive")
        if self.br > self.n_rows or self.bc > self.n_cols:
            raise ValueError("blocking factors cannot exceed the matrix dimensions")

    @property
    def num_blocks(self) -> int:
        """Total number of output blocks (``br * bc``)."""
        return self.br * self.bc

    def row_range(self, r: int) -> tuple[int, int]:
        """Global row range of block row ``r`` (balanced split)."""
        return _chunk_bounds(self.n_rows, self.br, r)

    def col_range(self, c: int) -> tuple[int, int]:
        """Global column range of block column ``c``."""
        return _chunk_bounds(self.n_cols, self.bc, c)

    def all_blocks(self) -> list[tuple[int, int]]:
        """All (block_row, block_col) pairs in row-major order."""
        return [(r, c) for r in range(self.br) for c in range(self.bc)]

    def block_bounds(self, r: int, c: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """(row range, col range) of one output block."""
        return self.row_range(r), self.col_range(c)


def _chunk_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    if not 0 <= index < parts:
        raise IndexError("block index out of range")
    base = n // parts
    extra = n % parts
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


@dataclass
class OutputBlock:
    """One computed block of the overlap matrix.

    Attributes
    ----------
    block_row, block_col:
        Block coordinates within the ``br x bc`` blocking.
    row_range, col_range:
        Global index ranges the block covers.
    result:
        The SUMMA result: per-rank COO pieces in global coordinates.
    stats:
        SpGEMM statistics of this block.
    """

    block_row: int
    block_col: int
    row_range: tuple[int, int]
    col_range: tuple[int, int]
    result: SummaResult
    stats: SpGemmStats

    @property
    def nnz(self) -> int:
        """Number of candidate elements discovered in this block."""
        return self.result.nnz

    def memory_bytes(self) -> int:
        """Memory held by this block's per-rank outputs."""
        return self.result.memory_bytes()


@dataclass
class BlockedSpGemm:
    """Blocked 2D Sparse SUMMA engine.

    Parameters
    ----------
    a, b:
        Distributed operands (for the overlap matrix, ``a`` is the
        sequence-by-k-mer matrix and ``b`` its transpose).
    semiring:
        Semiring used for candidate discovery.
    schedule:
        Output blocking.
    compute_category:
        Ledger category local multiplies are charged to.
    spgemm_backend:
        Registry name of the local SpGEMM kernel every SUMMA stage uses
        (see :mod:`repro.sparse.kernels`); ``None`` selects the default,
        ``"auto"`` re-selects per stage from the predicted compression
        factor.
    batch_flops:
        Per-row-group flop budget passed to every local multiply (bounds
        the Gustavson kernel's peak intermediate memory); ``None`` uses the
        kernel default.
    auto_compression_threshold:
        Dispatch crossover of the ``"auto"`` kernel
        (``PastisParams.auto_compression_threshold``); ignored by fixed
        backends, ``None`` keeps the registry default.
    deferred_merge:
        Run each block's SUMMA with the deferred local multiply (one kernel
        invocation per rank over the gathered stripes, after all stage
        broadcasts) instead of per-stage multiplies — identical
        communication, but per-element bit-identity with a serial kernel on
        the undistributed operands (see :func:`repro.distsparse.summa.summa`).
        The distributed Markov clustering requires it.
    collectives:
        Optional substitute :class:`~repro.mpi.collectives.CollectiveEngine`
        charging the broadcasts (e.g. into a dedicated ledger category);
        ``None`` uses the communicator's default engine.
    """

    a: DistSparseMatrix
    b: DistSparseMatrix
    semiring: Semiring
    schedule: BlockSchedule
    compute_category: str = "spgemm"
    spgemm_backend: str | None = None
    batch_flops: int | None = None
    auto_compression_threshold: float | None = None
    deferred_merge: bool = False
    collectives: object = None
    peak_block_bytes: int = field(default=0, init=False)
    total_stats: SpGemmStats = field(default_factory=SpGemmStats, init=False)
    blocks_computed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.a.shape[1] != self.b.shape[0]:
            raise ValueError("inner dimensions of the operands do not match")
        if (self.schedule.n_rows, self.schedule.n_cols) != (self.a.shape[0], self.b.shape[1]):
            raise ValueError("schedule dimensions must match the output shape")

    # ------------------------------------------------------------------ block computation
    def compute_block(self, block_row: int, block_col: int) -> OutputBlock:
        """Compute one output block via SUMMA over the corresponding stripes."""
        row_range = self.schedule.row_range(block_row)
        col_range = self.schedule.col_range(block_col)
        a_stripe = self.a.row_stripe(row_range)
        b_stripe = self.b.col_stripe(col_range)
        result = summa(
            a_stripe,
            b_stripe,
            self.semiring,
            output_shape=(self.a.shape[0], self.b.shape[1]),
            compute_category=self.compute_category,
            spgemm_backend=self.spgemm_backend,
            batch_flops=self.batch_flops,
            auto_compression_threshold=self.auto_compression_threshold,
            deferred_merge=self.deferred_merge,
            collectives=self.collectives,
        )
        self.blocks_computed += 1
        self.total_stats = self.total_stats.merge(result.stats)
        block_bytes = result.memory_bytes()
        self.peak_block_bytes = max(self.peak_block_bytes, block_bytes)
        return OutputBlock(
            block_row=block_row,
            block_col=block_col,
            row_range=row_range,
            col_range=col_range,
            result=result,
            stats=result.stats,
        )

    def iter_blocks(
        self, blocks: Iterable[tuple[int, int]] | None = None
    ) -> Iterator[OutputBlock]:
        """Yield output blocks one at a time (incremental similarity search).

        ``blocks`` defaults to all ``br * bc`` blocks in row-major order; the
        load-balancing schemes pass a reduced list (e.g. only blocks that
        intersect the strictly upper triangle).
        """
        if blocks is None:
            blocks = self.schedule.all_blocks()
        for block_row, block_col in blocks:
            yield self.compute_block(block_row, block_col)

    # ------------------------------------------------------------------ cost model hooks
    def broadcast_volume_model(self) -> dict[str, float]:
        """Closed-form communication volumes of blocked vs. plain SUMMA.

        Returns the message-count and word-volume factors of the paper's cost
        expressions (used by the perfmodel and the ``bench_comm_model``
        ablation): plain SUMMA sends ``2 sqrt(p) log sqrt(p)`` messages of the
        local submatrix size; the blocked variant multiplies the latency term
        by ``br*bc`` and the bandwidth term by ``(br + bc) / 2``.
        """
        grid_dim = self.a.grid.grid_dim
        p = grid_dim * grid_dim
        log_term = max(np.log2(max(grid_dim, 2)), 1.0)
        s_bytes = float(np.mean(self.a.memory_bytes_per_rank()))
        br, bc = self.schedule.br, self.schedule.bc
        return {
            "plain_latency_messages": 2 * np.sqrt(p) * log_term,
            "plain_bandwidth_bytes": 2 * s_bytes * np.sqrt(p) * log_term,
            "blocked_latency_messages": 2 * (br * bc) * np.sqrt(p) * log_term,
            "blocked_bandwidth_bytes": s_bytes * (br + bc) * np.sqrt(p) * log_term,
        }
