"""Gathering distributed results.

The similarity graph is normally written straight to disk with parallel IO
(each rank writes its own edges), but validation tests and small runs want
the merged result in memory; :func:`gather_to_root` models the gather
communication and returns the merged COO matrix.
"""

from __future__ import annotations

import numpy as np

from ..mpi.communicator import SimCommunicator
from ..sparse.coo import CooMatrix
from ..sparse.semiring import Semiring


def gather_to_root(
    per_rank: list[CooMatrix],
    shape: tuple[int, int],
    comm: SimCommunicator,
    semiring: Semiring | None = None,
    root: int = 0,
) -> CooMatrix:
    """Gather per-rank COO pieces (global coordinates) onto the root rank.

    The gather is charged as a tree reduction on the collective engine; the
    merged matrix (duplicates combined with ``semiring`` if given) is
    returned.
    """
    if len(per_rank) != comm.size:
        raise ValueError("need exactly one piece per rank")
    payload = {rank: per_rank[rank] for rank in range(comm.size)}
    comm.collectives.reduce(payload, lambda x, y: x, root=root)

    parts = [m for m in per_rank if m.nnz]
    if not parts:
        dtype = per_rank[0].dtype if per_rank else np.int8
        return CooMatrix.empty(shape, dtype=dtype)
    rows = np.concatenate([m.rows for m in parts])
    cols = np.concatenate([m.cols for m in parts])
    values = np.concatenate([m.values for m in parts])
    merged = CooMatrix(shape, rows, cols, values, check=False)
    if semiring is not None:
        return merged.deduplicate(semiring)
    return merged.sort_rowmajor()
