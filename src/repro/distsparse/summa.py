"""2D Sparse SUMMA (Buluç & Gilbert) on the simulated runtime.

``C = A ·(semiring) B`` proceeds in ``grid_dim`` stages.  In stage ``k``

* the owner of ``A``'s block at grid position ``(i, k)`` broadcasts it along
  grid row ``i``;
* the owner of ``B``'s block at ``(k, j)`` broadcasts it along grid column
  ``j``;
* every rank ``(i, j)`` multiplies the two received blocks with the semiring
  and accumulates the partial result into its local piece of ``C``.

Communication is charged through the collective engine (binomial-tree
broadcasts — the ``(alpha + beta*s) * log2(sqrt p)`` terms of the paper's
cost analysis), and every rank's local multiply time is measured and charged
to the ``spgemm`` category, so component breakdowns and load imbalance fall
out of the ledger.

The result is returned per rank in *global* output coordinates, which is what
the alignment phase consumes; :meth:`SummaResult.to_global` merges the ranks
for validation against a direct serial SpGEMM.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..sparse.coo import CooMatrix
from ..sparse.kernels import (
    SpGemmKernel,
    kernel_supports_batch_flops,
    kernel_supports_compression_threshold,
    resolve_kernel,
)
from ..sparse.semiring import Semiring
from ..obs import current_metrics
from ..sparse.spgemm import SpGemmStats
from ..trace import current_tracer
from .distmat import DistSparseMatrix


@dataclass
class SummaResult:
    """Output of one (possibly striped) SUMMA invocation.

    Attributes
    ----------
    shape:
        Global shape of the full output matrix the coordinates refer to.
    per_rank:
        One COO matrix per rank, in **global** coordinates, holding the
        output elements that rank computed/owns.
    stats:
        Aggregated SpGEMM statistics (flops, compression factor, ...).
    comm_seconds:
        Modelled broadcast time charged to the slowest rank.
    compute_seconds_per_rank:
        Measured local-multiply time per rank.
    """

    shape: tuple[int, int]
    per_rank: list[CooMatrix]
    stats: SpGemmStats = field(default_factory=SpGemmStats)
    comm_seconds: float = 0.0
    compute_seconds_per_rank: np.ndarray | None = None
    flops_per_rank: np.ndarray | None = None

    @property
    def nnz(self) -> int:
        """Total output nonzeros across ranks."""
        return sum(m.nnz for m in self.per_rank)

    def nnz_per_rank(self) -> np.ndarray:
        """Output nonzeros per rank."""
        return np.array([m.nnz for m in self.per_rank], dtype=np.int64)

    def memory_bytes(self) -> int:
        """Total memory held by the per-rank outputs."""
        return sum(m.memory_bytes() for m in self.per_rank)

    def to_global(self, semiring: Semiring | None = None) -> CooMatrix:
        """Merge the per-rank outputs into one global COO matrix."""
        parts = [m for m in self.per_rank if m.nnz]
        if not parts:
            dtype = self.per_rank[0].dtype if self.per_rank else np.int8
            return CooMatrix.empty(self.shape, dtype=dtype)
        rows = np.concatenate([m.rows for m in parts])
        cols = np.concatenate([m.cols for m in parts])
        values = np.concatenate([m.values for m in parts])
        merged = CooMatrix(self.shape, rows, cols, values, check=False)
        # blocks owned by different ranks are disjoint, but a semiring merge is
        # still applied defensively so stripe overlaps (if any) reduce correctly
        return merged.deduplicate(semiring) if semiring is not None else merged.sort_rowmajor()


def _concat_received(
    parts: list[tuple[CooMatrix, int, int]], shape: tuple[int, int]
) -> CooMatrix:
    """Concatenate broadcast-received blocks into one global-coordinate COO.

    Blocks arrive in stage order, i.e. ascending global inner index, and the
    concatenation preserves that order — which is what lets the deferred
    local multiply reduce every output element's partial products in the
    same left-to-right ascending-inner-index pass a serial kernel uses.
    """
    nonempty = [(blk, roff, coff) for blk, roff, coff in parts if blk.nnz]
    if not nonempty:
        return CooMatrix.empty(shape)
    rows = np.concatenate([blk.rows + roff for blk, roff, _ in nonempty])
    cols = np.concatenate([blk.cols + coff for blk, _, coff in nonempty])
    values = np.concatenate([blk.values for blk, _, _ in nonempty])
    return CooMatrix(shape, rows, cols, values, check=False)


def summa(
    a: DistSparseMatrix,
    b: DistSparseMatrix,
    semiring: Semiring,
    output_shape: tuple[int, int] | None = None,
    compute_category: str = "spgemm",
    spgemm_backend: str | SpGemmKernel | None = None,
    batch_flops: int | None = None,
    auto_compression_threshold: float | None = None,
    deferred_merge: bool = False,
    collectives=None,
) -> SummaResult:
    """Run the 2D Sparse SUMMA ``C = A ·(semiring) B`` on the simulated grid.

    ``a`` and ``b`` may be full distributed matrices or stripes of them; the
    output coordinates are global either way.  ``output_shape`` defaults to
    ``(a.shape[0], b.shape[1])`` and should be set to the full matrix shape
    when multiplying stripes.  ``spgemm_backend`` selects the local-multiply
    kernel by registry name (see :mod:`repro.sparse.kernels`) or directly as
    a callable; ``None`` uses the registry default.  ``batch_flops`` bounds
    the per-row-group flop budget of every local multiply (memory-constrained
    runs); the selected backend must support batching.
    ``auto_compression_threshold`` calibrates the ``"auto"`` kernel's
    dispatch crossover; backends without per-invocation dispatch ignore it
    (the knob tunes a policy, unlike ``batch_flops``, which demands a
    memory bound and is therefore rejected when unsupported).

    ``deferred_merge`` changes *when* each rank multiplies, not what it
    receives: the stage broadcasts (and their charged cost) are identical,
    but instead of multiplying the two blocks of every stage and merging the
    per-stage partials afterwards, each rank concatenates the received
    blocks into its full row stripe of ``A`` and column stripe of ``B`` —
    in stage order, i.e. ascending global inner index — and runs *one*
    local multiply at the end.  Per-stage merging reassociates the additive
    reduction (stage sums are formed first, then summed), so for
    non-exactly-representable values its floats differ in the last ulp from
    a single global multiply; the deferred variant keeps every output
    element's partial products in one left-to-right reduction over ascending
    inner index and is therefore **bit-identical per element to a serial
    kernel invocation on the undistributed operands** — the property the
    distributed Markov clustering (:mod:`repro.graph.dist`) is built on.

    ``collectives`` optionally substitutes the
    :class:`~repro.mpi.collectives.CollectiveEngine` charging the broadcasts
    (e.g. one with ``comm_category="cluster_comm"``); ``None`` uses the
    communicator's default engine.
    """
    if a.comm is not b.comm:
        raise ValueError("operands must live on the same communicator")
    comm = a.comm
    grid = comm.require_grid()
    dim = grid.grid_dim
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} x {b.shape}")
    if output_shape is None:
        output_shape = (a.shape[0], b.shape[1])
    spgemm_kernel = resolve_kernel(spgemm_backend)
    kernel_kwargs: dict[str, float] = {}
    if batch_flops is not None:
        if not kernel_supports_batch_flops(spgemm_kernel):
            raise ValueError(
                f"spgemm_backend {spgemm_backend!r} does not support batch_flops; "
                "use the 'gustavson' (or 'auto') backend for flop-budgeted batching"
            )
        kernel_kwargs["batch_flops"] = batch_flops
    if auto_compression_threshold is not None and kernel_supports_compression_threshold(
        spgemm_kernel
    ):
        kernel_kwargs["compression_threshold"] = auto_compression_threshold

    ledger = comm.ledger
    engine = comm.collectives if collectives is None else collectives
    partials: list[list[CooMatrix]] = [[] for _ in range(grid.nprocs)]
    received_a: list[list[tuple[CooMatrix, int, int]]] = [[] for _ in range(grid.nprocs)]
    received_b: list[list[tuple[CooMatrix, int, int]]] = [[] for _ in range(grid.nprocs)]
    stats = SpGemmStats()
    compute_seconds = np.zeros(grid.nprocs)
    flops_per_rank = np.zeros(grid.nprocs)
    comm_before = ledger.per_rank(engine.comm_category).copy()
    # spans go to whatever recorder is active in this process (the parent's,
    # or a process-pool worker's own journal); summa has no StageContext, so
    # it reaches the tracer through the module-level active-tracer global
    tracer = current_tracer()
    # kernel dispatch records (measured compression factor + per-kernel
    # seconds, the raw material for online adaptive dispatch) go to the
    # active metrics hub the same way — a worker's journaling hub rides the
    # block header back to the parent
    metrics = current_metrics()
    backend_label = ""
    if metrics is not None:
        backend_label = (
            spgemm_backend
            if isinstance(spgemm_backend, str)
            else getattr(spgemm_backend, "__name__", "custom")
        )

    for k in range(dim):
        stage_t0 = time.perf_counter() if tracer is not None else 0.0
        # --- broadcast A(:, k) along grid rows and B(k, :) along grid columns
        a_blocks: dict[int, tuple[CooMatrix, int, int]] = {}
        for i in range(dim):
            block, roff, coff = a.grid_block(i, k)
            owner = grid.rank_of(i, k)
            engine.bcast(block, owner, grid.row_group(i))
            for rank in grid.row_group(i):
                a_blocks[rank] = (block, roff, coff)
        b_blocks: dict[int, tuple[CooMatrix, int, int]] = {}
        for j in range(dim):
            block, roff, coff = b.grid_block(k, j)
            owner = grid.rank_of(k, j)
            engine.bcast(block, owner, grid.col_group(j))
            for rank in grid.col_group(j):
                b_blocks[rank] = (block, roff, coff)

        if deferred_merge:
            # hold the received blocks; the single local multiply runs after
            # the last stage so the additive reduction stays one left-to-right
            # pass over ascending global inner index
            for rank in range(grid.nprocs):
                received_a[rank].append(a_blocks[rank])
                received_b[rank].append(b_blocks[rank])
            if tracer is not None:
                tracer.add_span(
                    "summa_stage", "summa", stage_t0, time.perf_counter(),
                    lane="discover", stage=k, deferred=True,
                )
            continue

        # --- local semiring multiply on every rank
        for rank in range(grid.nprocs):
            a_block, a_roff, _ = a_blocks[rank]
            b_block, _, b_coff = b_blocks[rank]
            if a_block.nnz == 0 or b_block.nnz == 0:
                continue
            t0 = time.perf_counter()
            partial, pstats = spgemm_kernel(
                a_block, b_block, semiring, return_stats=True, **kernel_kwargs
            )
            kernel_dt = time.perf_counter() - t0
            compute_seconds[rank] += kernel_dt
            stats = stats.merge(pstats)
            if metrics is not None:
                metrics.record_spgemm_stage(
                    backend_label, k, kernel_dt, pstats.flops,
                    pstats.compression_factor,
                )
            if partial.nnz:
                partials[rank].append(
                    CooMatrix(
                        output_shape,
                        partial.rows + a_roff,
                        partial.cols + b_coff,
                        partial.values,
                        check=False,
                    )
                )
            ledger.count(rank, "spgemm_flops", pstats.flops)
            flops_per_rank[rank] += pstats.flops
        if tracer is not None:
            tracer.add_span(
                "summa_stage", "summa", stage_t0, time.perf_counter(),
                lane="discover", stage=k,
            )

    per_rank: list[CooMatrix] = []
    if deferred_merge:
        merge_t0 = time.perf_counter() if tracer is not None else 0.0
        # --- one local multiply per rank over the gathered stripes
        for rank in range(grid.nprocs):
            a_local = _concat_received(received_a[rank], (a.shape[0], a.shape[1]))
            b_local = _concat_received(received_b[rank], (b.shape[0], b.shape[1]))
            if a_local.nnz == 0 or b_local.nnz == 0:
                per_rank.append(CooMatrix.empty(output_shape, dtype=semiring.value_dtype))
                continue
            t0 = time.perf_counter()
            partial, pstats = spgemm_kernel(
                a_local, b_local, semiring, return_stats=True, **kernel_kwargs
            )
            kernel_dt = time.perf_counter() - t0
            compute_seconds[rank] += kernel_dt
            stats = stats.merge(pstats)
            if metrics is not None:
                metrics.record_spgemm_stage(
                    backend_label, "merge", kernel_dt, pstats.flops,
                    pstats.compression_factor,
                )
            # operand coordinates were global, so the output already is too
            per_rank.append(
                CooMatrix(output_shape, partial.rows, partial.cols, partial.values, check=False)
            )
            ledger.count(rank, "spgemm_flops", pstats.flops)
            flops_per_rank[rank] += pstats.flops
        if tracer is not None:
            tracer.add_span(
                "summa_merge", "summa", merge_t0, time.perf_counter(),
                lane="discover",
            )
    else:
        # --- merge per-rank partial results across stages
        for rank in range(grid.nprocs):
            parts = partials[rank]
            if not parts:
                per_rank.append(CooMatrix.empty(output_shape, dtype=semiring.value_dtype))
                continue
            t0 = time.perf_counter()
            rows = np.concatenate([p.rows for p in parts])
            cols = np.concatenate([p.cols for p in parts])
            values = np.concatenate([p.values for p in parts])
            merged = CooMatrix(output_shape, rows, cols, values, check=False).deduplicate(semiring)
            compute_seconds[rank] += time.perf_counter() - t0
            per_rank.append(merged)

    for rank in range(grid.nprocs):
        ledger.charge(rank, compute_category, compute_seconds[rank])
    comm_after = ledger.per_rank(engine.comm_category)
    comm_seconds = float((comm_after - comm_before).max()) if grid.nprocs else 0.0

    return SummaResult(
        shape=output_shape,
        per_rank=per_rank,
        stats=stats,
        comm_seconds=comm_seconds,
        compute_seconds_per_rank=compute_seconds,
        flops_per_rank=flops_per_rank,
    )
