"""2D block-distributed sparse matrix.

A :class:`DistSparseMatrix` partitions a global ``nrows x ncols`` sparse
matrix into ``grid_dim x grid_dim`` rectangular blocks; virtual rank ``(i,j)``
of the process grid owns the block covering row chunk ``i`` and column chunk
``j`` (CombBLAS's 2D decomposition).  Local blocks are stored as
:class:`repro.sparse.coo.CooMatrix` with *block-local* coordinates; the
matrix knows each block's global offsets so results can be mapped back to
global indices.

The blocked SUMMA of §VI-A works on *stripes*: ``A(r, *)`` is the row stripe
of ``A`` covering output block-row ``r``, still distributed over the whole
process grid.  :meth:`DistSparseMatrix.row_stripe` /
:meth:`DistSparseMatrix.col_stripe` return such stripes as lightweight views
that keep the original global offsets, so the SUMMA kernel can treat full
matrices and stripes uniformly through the :meth:`grid_block` interface.
"""

from __future__ import annotations

import numpy as np

from ..mpi.communicator import SimCommunicator
from ..mpi.process_grid import ProcessGrid
from ..sparse.coo import CooMatrix


class DistSparseMatrix:
    """A sparse matrix distributed over a 2D process grid.

    Parameters
    ----------
    shape:
        Global ``(nrows, ncols)``.
    comm:
        Simulated communicator whose grid defines the decomposition.
    local_blocks:
        One :class:`CooMatrix` per rank, in rank order, each holding the
        rank's block with block-local coordinates.
    row_offsets, col_offsets:
        Optional per-rank global offsets of the blocks.  When omitted, the
        balanced decomposition of ``shape`` over the grid is assumed.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        comm: SimCommunicator,
        local_blocks: list[CooMatrix],
        row_offsets: list[int] | None = None,
        col_offsets: list[int] | None = None,
    ) -> None:
        grid = comm.require_grid()
        if len(local_blocks) != grid.nprocs:
            raise ValueError("need exactly one local block per rank")
        self.shape = (int(shape[0]), int(shape[1]))
        self.comm = comm
        self.grid: ProcessGrid = grid
        self._blocks = local_blocks
        if row_offsets is None or col_offsets is None:
            row_offsets = []
            col_offsets = []
            for rank in range(grid.nprocs):
                (rlo, rhi), (clo, chi) = grid.local_ranges(self.shape[0], self.shape[1], rank)
                row_offsets.append(rlo)
                col_offsets.append(clo)
                block = local_blocks[rank]
                if block.shape != (rhi - rlo, chi - clo):
                    raise ValueError(
                        f"rank {rank} local block has shape {block.shape}, "
                        f"expected {(rhi - rlo, chi - clo)}"
                    )
        self._row_offsets = list(row_offsets)
        self._col_offsets = list(col_offsets)

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_global_coo(cls, matrix: CooMatrix, comm: SimCommunicator) -> "DistSparseMatrix":
        """Partition a global COO matrix onto the grid (no communication charged).

        Use :func:`repro.distsparse.distribute.distribute_coo` when the
        distribution traffic itself should be accounted.
        """
        grid = comm.require_grid()
        nrows, ncols = matrix.shape
        blocks: list[CooMatrix] = []
        for rank in range(grid.nprocs):
            (rlo, rhi), (clo, chi) = grid.local_ranges(nrows, ncols, rank)
            blocks.append(matrix.submatrix((rlo, rhi), (clo, chi), relabel=True))
        return cls(matrix.shape, comm, blocks)

    @classmethod
    def empty(cls, shape: tuple[int, int], comm: SimCommunicator, dtype=np.int8) -> "DistSparseMatrix":
        """An all-empty distributed matrix of the given shape and value dtype."""
        grid = comm.require_grid()
        blocks = [
            CooMatrix.empty(grid.local_shape(shape[0], shape[1], rank), dtype=dtype)
            for rank in range(grid.nprocs)
        ]
        return cls(shape, comm, blocks)

    # ------------------------------------------------------------------ access
    def local(self, rank: int) -> CooMatrix:
        """The local block of a rank (block-local coordinates)."""
        return self._blocks[rank]

    def offsets(self, rank: int) -> tuple[int, int]:
        """Global (row, col) offsets of a rank's block."""
        return self._row_offsets[rank], self._col_offsets[rank]

    def grid_block(self, grid_row: int, grid_col: int) -> tuple[CooMatrix, int, int]:
        """Block at grid position ``(grid_row, grid_col)`` with its global offsets."""
        rank = self.grid.rank_of(grid_row, grid_col)
        return self._blocks[rank], self._row_offsets[rank], self._col_offsets[rank]

    def set_local(self, rank: int, block: CooMatrix) -> None:
        """Replace a rank's local block (shape must be preserved)."""
        if block.shape != self._blocks[rank].shape:
            raise ValueError(
                f"block shape {block.shape} does not match {self._blocks[rank].shape}"
            )
        self._blocks[rank] = block

    @property
    def nnz(self) -> int:
        """Global number of nonzeros."""
        return sum(block.nnz for block in self._blocks)

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the blocks."""
        return self._blocks[0].dtype

    def nnz_per_rank(self) -> np.ndarray:
        """Nonzeros per rank (load-balance diagnostics)."""
        return np.array([block.nnz for block in self._blocks], dtype=np.int64)

    def memory_bytes_per_rank(self) -> np.ndarray:
        """Local memory footprint per rank."""
        return np.array([block.memory_bytes() for block in self._blocks], dtype=np.int64)

    # ------------------------------------------------------------------ conversion
    def to_global_coo(self) -> CooMatrix:
        """Concatenate all local blocks into one global-coordinate COO matrix."""
        parts = []
        for rank in range(self.grid.nprocs):
            block = self._blocks[rank]
            if block.nnz == 0:
                continue
            rlo, clo = self._row_offsets[rank], self._col_offsets[rank]
            parts.append((block.rows + rlo, block.cols + clo, block.values))
        if not parts:
            return CooMatrix.empty(self.shape, dtype=self.dtype)
        rows = np.concatenate([p[0] for p in parts])
        cols = np.concatenate([p[1] for p in parts])
        values = np.concatenate([p[2] for p in parts])
        return CooMatrix(self.shape, rows, cols, values, check=False).sort_rowmajor()

    # ------------------------------------------------------------------ stripes
    def row_stripe(self, row_range: tuple[int, int]) -> "DistSparseMatrix":
        """The row stripe ``A(r, *)`` over a global row range (still grid-distributed).

        Offsets are kept in the *original* global coordinate system so that
        SUMMA's output coordinates are global sequence indices directly.
        """
        r0, r1 = row_range
        blocks: list[CooMatrix] = []
        row_offsets: list[int] = []
        col_offsets: list[int] = []
        for rank in range(self.grid.nprocs):
            block = self._blocks[rank]
            rlo, clo = self._row_offsets[rank], self._col_offsets[rank]
            lo = min(max(r0 - rlo, 0), block.shape[0])
            hi = min(max(r1 - rlo, 0), block.shape[0])
            sub = block.submatrix((lo, hi), (0, block.shape[1]), relabel=True)
            blocks.append(sub)
            row_offsets.append(rlo + lo)
            col_offsets.append(clo)
        return DistSparseMatrix(self.shape, self.comm, blocks, row_offsets, col_offsets)

    def col_stripe(self, col_range: tuple[int, int]) -> "DistSparseMatrix":
        """The column stripe ``B(*, c)`` over a global column range."""
        c0, c1 = col_range
        blocks: list[CooMatrix] = []
        row_offsets: list[int] = []
        col_offsets: list[int] = []
        for rank in range(self.grid.nprocs):
            block = self._blocks[rank]
            rlo, clo = self._row_offsets[rank], self._col_offsets[rank]
            lo = min(max(c0 - clo, 0), block.shape[1])
            hi = min(max(c1 - clo, 0), block.shape[1])
            sub = block.submatrix((0, block.shape[0]), (lo, hi), relabel=True)
            blocks.append(sub)
            row_offsets.append(rlo)
            col_offsets.append(clo + lo)
        return DistSparseMatrix(self.shape, self.comm, blocks, row_offsets, col_offsets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistSparseMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"grid={self.grid.grid_dim}x{self.grid.grid_dim})"
        )
