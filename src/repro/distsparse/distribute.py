"""Distribution of input data onto the process grid.

PASTIS reads the FASTA file in parallel (each rank parses a byte range) and
then redistributes both the sequences and the k-mer triplets so that every
rank owns its 2D block of the sequence-by-k-mer matrix.  The redistribution
is a personalized all-to-all; its traffic is charged here.  Sequences
themselves are also exchanged (each rank eventually needs the residues of the
sequences appearing in its alignment work), which PASTIS overlaps with
computation using non-blocking sends — the *wait* time of that exchange is
the ``cwait`` column of Table II and is charged to the ``cwait`` category.
"""

from __future__ import annotations

import numpy as np

from ..mpi.communicator import SimCommunicator
from ..sequences.sequence import SequenceSet
from ..sparse.coo import CooMatrix
from .distmat import DistSparseMatrix


def distribute_coo(matrix: CooMatrix, comm: SimCommunicator) -> DistSparseMatrix:
    """Distribute a global COO matrix onto the 2D grid, charging the traffic.

    The triplets are assumed to start uniformly spread over ranks (the result
    of parallel input parsing); moving each triplet to its owning rank is a
    personalized all-to-all whose per-rank volume is ``nnz/p`` triplets.
    """
    grid = comm.require_grid()
    dist = DistSparseMatrix.from_global_coo(matrix, comm)

    # model the all-to-all that permutes triplets from the readers to the owners
    triplet_bytes = 8 + 8 + (matrix.values.dtype.itemsize if matrix.nnz else 8)
    per_rank_bytes = int(matrix.nnz / max(grid.nprocs, 1)) * triplet_bytes
    send_matrix = {
        src: {dst: np.zeros(0, dtype=np.uint8) for dst in range(grid.nprocs) if dst != src}
        for src in range(grid.nprocs)
    }
    # charge the volume explicitly (payloads above are placeholders)
    for rank in range(grid.nprocs):
        seconds = comm.cluster.network.alltoallv_seconds(per_rank_bytes, grid.nprocs)
        comm.ledger.charge(rank, "comm", seconds)
        comm.ledger.count(rank, "bytes_sent", per_rank_bytes)
    del send_matrix
    return dist


def distribute_sequences(
    sequences: SequenceSet, comm: SimCommunicator, category: str = "cwait"
) -> list[np.ndarray]:
    """Assign sequences to grid rows and model the (non-blocking) exchange.

    Returns, for every rank, the array of global sequence indices whose
    residues that rank will need for alignment (all sequences in its grid
    row's and grid column's index ranges).  The transfer is started
    non-blocking right after input parsing; only a small *wait* cost is
    charged (the paper measures it at well under 1% of the runtime), plus the
    full volume is recorded in the byte counters.
    """
    grid = comm.require_grid()
    n = len(sequences)
    lengths = sequences.lengths
    needed: list[np.ndarray] = []
    for rank in range(grid.nprocs):
        (rlo, rhi), (clo, chi) = grid.local_ranges(n, n, rank)
        idx = np.unique(np.concatenate([np.arange(rlo, rhi), np.arange(clo, chi)]))
        needed.append(idx)
        volume = int(lengths[idx].sum()) if idx.size else 0
        comm.ledger.count(rank, "sequence_bytes_received", volume)
        # non-blocking transfer: charge only the completion-wait, modelled as
        # the latency of draining the last in-flight message
        wait = comm.cluster.network.point_to_point_seconds(min(volume, 1 << 20))
        comm.ledger.charge(rank, category, wait)
    return needed
