"""Per-rank stripe shards: the on-disk form of a distributed operand.

The serving index (:mod:`repro.serve.index`) persists the database operand
``Bᵀ = A_dbᵀ`` as the exact column stripes Blocked SUMMA consumes: for each
output block column ``c`` and each rank ``r``, one ``.npz`` shard holding
the rank's local COO piece of ``B.col_stripe(col_range(c))`` together with
its global placement offsets.  Loading the shards of a stripe reconstructs
a :class:`~repro.distsparse.distmat.DistSparseMatrix` *bitwise identical*
to the one an all-vs-all run would slice out of the freshly built matrix —
which is what keeps the PR 6 stage-cache stripe digests honest across the
build/serve boundary.

:class:`ShardedStripeMatrix` is the lazy B-side operand adapter: it exposes
exactly the surface :class:`~repro.distsparse.blocked_summa.BlockedSpGemm`
touches (``shape``, ``col_stripe``) plus ``nnz`` for the pipeline's stripe
cost model, loading and digest-verifying each stripe on first use.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..config import atomic_write_bytes
from ..mpi.communicator import SimCommunicator
from ..sparse.coo import CooMatrix
from .distmat import DistSparseMatrix


def shard_filename(stripe: int, rank: int) -> str:
    """Canonical shard file name for (block column, rank)."""
    return f"stripe-{stripe:05d}-rank-{rank:03d}.npz"


def write_shard(path: Path, block: CooMatrix, row_offset: int, col_offset: int) -> int:
    """Atomically persist one rank's piece of a column stripe; returns bytes."""
    buffer = io.BytesIO()
    np.savez(
        buffer,
        rows=block.rows,
        cols=block.cols,
        values=block.values,
        shape=np.asarray(block.shape, dtype=np.int64),
        row_offset=np.int64(row_offset),
        col_offset=np.int64(col_offset),
    )
    data = buffer.getvalue()
    atomic_write_bytes(path, data)
    return len(data)


def read_shard(path: Path) -> tuple[CooMatrix, int, int]:
    """Parse one shard file back into (local block, row offset, col offset).

    Raises on any malformation; callers wrap failures into the serve-layer
    integrity error naming the offending file.
    """
    with np.load(io.BytesIO(path.read_bytes()), allow_pickle=False) as npz:
        missing = {"rows", "cols", "values", "shape", "row_offset", "col_offset"} - set(
            npz.files
        )
        if missing:
            raise ValueError(f"shard missing fields: {sorted(missing)}")
        shape = tuple(int(x) for x in npz["shape"])
        if len(shape) != 2:
            raise ValueError(f"shard shape field has {len(shape)} dimensions")
        block = CooMatrix(shape, npz["rows"], npz["cols"], npz["values"])
        return block, int(npz["row_offset"]), int(npz["col_offset"])


def write_stripe_shards(
    directory: Path, stripe: int, matrix: DistSparseMatrix
) -> tuple[list[str], int]:
    """Persist every rank's piece of one column stripe; returns (names, bytes)."""
    names: list[str] = []
    total = 0
    for rank in range(matrix.grid.nprocs):
        name = shard_filename(stripe, rank)
        row_offset, col_offset = matrix.offsets(rank)
        total += write_shard(directory / name, matrix.local(rank), row_offset, col_offset)
        names.append(name)
    return names, total


def load_stripe_shards(
    directory: Path, stripe: int, shape: tuple[int, int], comm: SimCommunicator
) -> DistSparseMatrix:
    """Reassemble one column stripe from its per-rank shard files.

    ``shape`` is the *full* operand shape: stripes keep global offsets (the
    same convention as :meth:`DistSparseMatrix.col_stripe`), so SUMMA output
    coordinates stay global.
    """
    grid = comm.require_grid()
    blocks: list[CooMatrix] = []
    row_offsets: list[int] = []
    col_offsets: list[int] = []
    for rank in range(grid.nprocs):
        block, row_offset, col_offset = read_shard(directory / shard_filename(stripe, rank))
        blocks.append(block)
        row_offsets.append(row_offset)
        col_offsets.append(col_offset)
    return DistSparseMatrix(shape, comm, blocks, row_offsets, col_offsets)


@dataclass
class ShardedStripeMatrix:
    """Disk-backed B-side operand for :class:`BlockedSpGemm`.

    Quacks like the column-stripe source SUMMA needs — ``shape`` and
    ``col_stripe(col_range)`` — but serves stripes from the index shards,
    loaded lazily and verified against their stamped digests on first use.
    Only the exact column ranges the index was blocked with are available;
    asking for any other range is a contract violation, not a recompute.
    """

    shape: tuple[int, int]
    nnz: int
    #: global column range of each stored stripe, in stripe order
    col_ranges: list[tuple[int, int]]
    #: loads (and digest-verifies) stripe ``c`` as a DistSparseMatrix
    loader: Callable[[int], DistSparseMatrix]
    _by_range: dict[tuple[int, int], int] = field(init=False, repr=False)
    _loaded: dict[int, DistSparseMatrix] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self._by_range = {
            (int(lo), int(hi)): c for c, (lo, hi) in enumerate(self.col_ranges)
        }

    def col_stripe(self, col_range: tuple[int, int]) -> DistSparseMatrix:
        """The stored stripe covering ``col_range`` (must match exactly)."""
        key = (int(col_range[0]), int(col_range[1]))
        if key not in self._by_range:
            raise ValueError(
                f"index has no stripe for column range {key}; stored stripes "
                f"cover {sorted(self._by_range)} — the run's blocking must "
                "match the blocking the index was built with"
            )
        c = self._by_range[key]
        if c not in self._loaded:
            self._loaded[c] = self.loader(c)
        return self._loaded[c]

    def preload(self) -> None:
        """Load (and verify) every stripe up front."""
        for lo_hi in list(self._by_range):
            self.col_stripe(lo_hi)

    @property
    def loaded_stripes(self) -> int:
        return len(self._loaded)
