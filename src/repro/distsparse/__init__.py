"""2D-distributed sparse matrices and the (Blocked) Sparse SUMMA algorithms.

This is the distributed-memory layer of the reproduction, playing the role
CombBLAS plays for PASTIS:

* :mod:`repro.distsparse.distmat` — a sparse matrix partitioned into
  rectangular blocks over the square process grid (one local
  :class:`repro.sparse.coo.CooMatrix` per virtual rank);
* :mod:`repro.distsparse.distribute` — partitioning triplets / sequences to
  the grid, with the distribution traffic charged as an all-to-all;
* :mod:`repro.distsparse.summa` — the 2D Sparse SUMMA SpGEMM of Buluç &
  Gilbert, with row/column broadcasts charged per stage;
* :mod:`repro.distsparse.blocked_summa` — the paper's **Blocked 2D Sparse
  SUMMA** (§VI-A): the output matrix is formed in ``br x bc`` blocks, each
  computed by a SUMMA over the corresponding row stripe of ``A`` and column
  stripe of ``B``, so peak memory is bounded by one output block (plus the
  stripes) instead of the whole overlap matrix;
* :mod:`repro.distsparse.gather` — gathering distributed results back to a
  single COO matrix.
"""

from .distmat import DistSparseMatrix
from .distribute import distribute_coo, distribute_sequences
from .summa import summa, SummaResult
from .blocked_summa import BlockedSpGemm, BlockSchedule, OutputBlock
from .gather import gather_to_root

__all__ = [
    "DistSparseMatrix",
    "distribute_coo",
    "distribute_sequences",
    "summa",
    "SummaResult",
    "BlockedSpGemm",
    "BlockSchedule",
    "OutputBlock",
    "gather_to_root",
]
