"""Robust perf-regression detection over manifests and BENCH results.

The detector compares one *target* document (a registry ``run.json`` or
a ``benchmarks/results/BENCH_*.json``) against a set of *baseline*
documents, metric by metric, using median + MAD bands:

* a metric is any numeric leaf whose dotted key looks like a duration
  (``seconds``/``_time``/``time_`` — counters like flops or bytes are
  not slowdowns);
* the baseline band for a metric is ``median + k · 1.4826 · MAD`` over
  the baseline samples (1.4826 scales MAD to σ under normality);
* a *finding* requires the current value to exceed **both** the MAD
  band and ``min_ratio × median`` — the ratio floor keeps a one-sample
  baseline usable (MAD = 0) and keeps microsecond-level jitter from
  flagging, while the MAD band adapts to each host's observed variance.

With defaults (``min_ratio = 1.25``), an injected 2× slowdown against a
single stored baseline is flagged and an identical re-run passes — the
contract asserted in ``tests/test_obs.py``.
"""

from __future__ import annotations

import json
import re
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "flatten_numeric",
    "detect",
    "Finding",
    "load_baseline_docs",
    "DEFAULT_METRIC_PATTERN",
    "DEFAULT_MIN_RATIO",
    "DEFAULT_MAD_K",
]

#: which flattened keys count as durations worth guarding
DEFAULT_METRIC_PATTERN = r"(seconds|_time\b|\btime_|elapsed)"
DEFAULT_MIN_RATIO = 1.25
DEFAULT_MAD_K = 4.0
#: durations below this are pure noise (and zero-time phases divide badly)
MIN_BASELINE_SECONDS = 1e-6

#: document keys that describe the run rather than measure it
_NON_METRIC_ROOTS = ("host", "meta", "params_token", "config", "error", "metrics")


def flatten_numeric(doc: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """All numeric leaves of a nested document as dotted flat keys.

    Descriptive sections (host fingerprint, params token, config, the
    raw metrics snapshot) are skipped at the top level — they describe
    *what* ran, not *how fast*.
    """
    out: dict[str, float] = {}
    for key, value in doc.items():
        if not prefix and key in _NON_METRIC_ROOTS:
            continue
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[dotted] = float(value)
        elif isinstance(value, Mapping):
            out.update(flatten_numeric(value, prefix=f"{dotted}."))
    return out


@dataclass
class Finding:
    """One flagged slowdown."""

    metric: str
    current: float
    median: float
    mad: float
    threshold: float
    n_baseline: int

    @property
    def ratio(self) -> float:
        return self.current / self.median if self.median > 0 else float("inf")

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.current:.6g}s vs baseline median "
            f"{self.median:.6g}s ({self.ratio:.2f}x, threshold "
            f"{self.threshold:.6g}s over {self.n_baseline} baseline run"
            f"{'s' if self.n_baseline != 1 else ''})"
        )


def detect(
    current: Mapping[str, float],
    baselines: Iterable[Mapping[str, float]],
    *,
    pattern: str = DEFAULT_METRIC_PATTERN,
    min_ratio: float = DEFAULT_MIN_RATIO,
    mad_k: float = DEFAULT_MAD_K,
) -> list[Finding]:
    """Compare flattened *current* against flattened *baselines*.

    Returns the flagged metrics, worst ratio first.  Metrics missing
    from either side are skipped: a new phase has no baseline yet, and
    a removed one has nothing to regress.
    """
    baselines = list(baselines)
    matcher = re.compile(pattern)
    findings: list[Finding] = []
    for metric in sorted(current):
        if not matcher.search(metric):
            continue
        samples = [b[metric] for b in baselines if metric in b]
        if not samples:
            continue
        median = statistics.median(samples)
        if median < MIN_BASELINE_SECONDS:
            continue
        mad = statistics.median(abs(s - median) for s in samples)
        threshold = max(median + mad_k * 1.4826 * mad, min_ratio * median)
        value = current[metric]
        if value > threshold:
            findings.append(
                Finding(
                    metric=metric,
                    current=value,
                    median=median,
                    mad=mad,
                    threshold=threshold,
                    n_baseline=len(samples),
                )
            )
    findings.sort(key=lambda f: f.ratio, reverse=True)
    return findings


# ---- baseline loading ------------------------------------------------------


def _doc_meta(doc: Mapping[str, Any]) -> tuple[str | None, str | None]:
    """(bench name, host fingerprint) of one document, when stamped."""
    meta = doc.get("meta") if isinstance(doc.get("meta"), Mapping) else {}
    host = doc.get("host") if isinstance(doc.get("host"), Mapping) else {}
    bench = meta.get("bench") or doc.get("bench")
    fingerprint = (
        (meta.get("host") or {}).get("fingerprint")
        if isinstance(meta.get("host"), Mapping)
        else None
    ) or host.get("fingerprint") or doc.get("host_fingerprint")
    return bench, fingerprint


def load_baseline_docs(
    paths: Iterable[str | Path],
    *,
    bench: str | None = None,
    host: str | None = None,
) -> list[dict[str, Any]]:
    """Collect baseline documents from files and directories.

    ``*.json`` files contribute one document each; ``*.jsonl``
    trajectories (``benchmarks/results/trajectory.jsonl``) contribute
    one per line; directories are scanned for both.  When *bench* or
    *host* are given, documents stamped with a different bench name or
    host fingerprint are filtered out; unstamped documents are kept
    (pre-schema files remain usable as baselines).
    """
    docs: list[dict[str, Any]] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files: list[Path] = sorted(path.glob("*.json")) + sorted(
                path.glob("*.jsonl")
            )
        else:
            files = [path]
        for file in files:
            if file.suffix == ".jsonl":
                for line in file.read_text().splitlines():
                    line = line.strip()
                    if line:
                        docs.append(json.loads(line))
            elif file.suffix == ".json":
                docs.append(json.loads(file.read_text()))
    kept = []
    for doc in docs:
        doc_bench, doc_host = _doc_meta(doc)
        if bench is not None and doc_bench is not None and doc_bench != bench:
            continue
        if host is not None and doc_host is not None and doc_host != host:
            continue
        kept.append(doc)
    return kept


def doc_metrics(doc: Mapping[str, Any]) -> dict[str, float]:
    """Flattened metrics of one document (trajectory entries store them
    pre-flattened under ``"metrics"``)."""
    metrics = doc.get("metrics")
    if isinstance(metrics, Mapping) and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in metrics.values()
    ):
        return {str(k): float(v) for k, v in metrics.items()}
    return flatten_numeric(doc)
