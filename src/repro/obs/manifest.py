"""Schema-versioned run manifests: what one ``PastisPipeline.run`` measured.

A manifest is one JSON document describing a run well enough to compare
it against other runs later: the params cache token (the same
result-determining subset the stage cache keys on), a host fingerprint,
the scheduler/kernel configuration, phase wall seconds, ledger totals,
cache counters, peak memory, the metrics snapshot, and the exit status.
Failed runs get a manifest too — with whatever phase timers had
accumulated when the run died, which is usually the most interesting
timing a crashed run leaves behind.

Manifests are written by :class:`repro.obs.registry.RunRegistry` and
compared by :mod:`repro.obs.regress`.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
import time
import uuid
from typing import Any

__all__ = [
    "RUN_SCHEMA_VERSION",
    "host_fingerprint",
    "git_revision",
    "new_run_id",
    "config_key",
    "build_manifest",
]

#: bump when manifest keys change incompatibly; readers reject newer schemas
RUN_SCHEMA_VERSION = 1


def host_fingerprint() -> dict[str, Any]:
    """Stable identity of the machine a run executed on.

    Baselines are per-host: comparing seconds across different hardware
    is noise, so the regression detector groups runs by ``fingerprint``.
    """
    info = {
        "hostname": socket.gethostname(),
        "platform": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()
    ).hexdigest()[:12]
    return {**info, "fingerprint": digest}


def git_revision(cwd: str | None = None) -> str | None:
    """Current git commit hash, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def new_run_id() -> str:
    """Chronologically sortable, collision-safe run identifier.

    Microsecond resolution: back-to-back runs in the same second (warm
    cache hits finish in milliseconds) must still sort in creation order,
    or ``latest``/``ls`` would order them by the random suffix.
    """
    now = time.time()
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
    micros = int((now % 1.0) * 1e6)
    return f"{stamp}.{micros:06d}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def config_key(params_token: dict[str, Any]) -> str:
    """Digest of the result-determining params — runs with the same key
    computed the same thing and are comparable as baselines."""
    return hashlib.sha256(
        json.dumps(params_token, sort_keys=True, default=str).encode()
    ).hexdigest()[:16]


def build_manifest(
    *,
    params: Any,
    status: str,
    scheduler: str | None = None,
    phases: Any = None,
    hub: Any = None,
    comm: Any = None,
    cache: Any = None,
    stats: Any = None,
    error: BaseException | None = None,
    wall_seconds: float | None = None,
) -> dict[str, Any]:
    """Assemble the ``run.json`` document for one pipeline run.

    Every argument except ``params``/``status`` is optional so the
    failure path can record whatever state existed when the run died:
    a crash before the communicator was built still yields a valid
    manifest with its partial phase timers.
    """
    # imported here, not at module top: engine.cache pulls in the sparse
    # stack, which itself imports the light repro.obs __init__
    from ..core.engine.cache import params_cache_token

    token = params_cache_token(params)
    ledger = getattr(comm, "ledger", None)
    manifest: dict[str, Any] = {
        "schema": RUN_SCHEMA_VERSION,
        "run_id": new_run_id(),
        "created_at": time.time(),
        "status": status,
        "host": host_fingerprint(),
        "git_revision": git_revision(),
        "params_token": token,
        "config_key": config_key(token),
        "config": {
            "scheduler": scheduler,
            "clock": params.clock,
            "nodes": params.nodes,
            "num_blocks": params.num_blocks,
            "pre_blocking": params.pre_blocking,
            "preblock_depth": params.preblock_depth,
            "preblock_workers": params.preblock_workers,
            "spgemm_backend": str(params.spgemm_backend),
            "batch_flops": params.batch_flops,
            "auto_compression_threshold": params.auto_compression_threshold,
        },
        "wall_seconds": wall_seconds,
        "phase_seconds": dict(phases.summary()) if phases is not None else {},
        "error": (
            {"type": type(error).__name__, "message": str(error)}
            if error is not None
            else None
        ),
    }
    if ledger is not None:
        manifest["ledger"] = {
            "category_seconds": {
                cat: float(ledger.per_rank(cat).sum()) for cat in ledger.categories()
            },
            # the ledger has no public counter listing; its journal dict is
            # the source of truth for which counters were ever incremented
            "counters": {
                name: ledger.counter_total(name) for name in sorted(ledger._counters)
            },
        }
    if cache is not None:
        manifest["cache"] = dict(cache.counters())
    if stats is not None:
        manifest["peak_memory"] = {
            "peak_block_bytes": float(stats.peak_block_bytes),
            "peak_live_block_bytes": float(
                stats.extras.get("peak_live_block_bytes", 0.0)
            ),
        }
        manifest["stats"] = stats.as_dict()
    if hub is not None:
        manifest["metrics"] = hub.snapshot()
    return manifest
