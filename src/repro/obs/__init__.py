"""Run observability: metrics facade, run registry, regression detection.

Three layers, built on top of (and complementary to) :mod:`repro.trace`:

* :class:`MetricsHub` — typed counters/gauges/histograms with label
  sets, fed from the ``CostLedger`` trace hook, phase timers, cache
  counters, scheduler lane stats, and per-SUMMA-stage kernel dispatch
  records.  Enabled with ``PastisParams.metrics``; the hub rides on
  ``SearchResult.metrics``.
* :mod:`repro.obs.manifest` / :mod:`repro.obs.registry` — every
  ``PastisPipeline.run`` with ``PastisParams.run_registry`` set writes a
  schema-versioned ``run.json`` manifest (success *and* failure paths)
  into a local registry directory.
* :mod:`repro.obs.regress` — robust (median + MAD) per-host regression
  detection over registry runs and ``BENCH_*.json`` trajectories, via
  ``python -m repro.obs regress``.

This ``__init__`` stays import-light (metrics + the active-hub global
only) so low-level modules can depend on it without cycles; manifest,
registry, and regress are imported explicitly by their users.

Like tracing, collection is off by default, near-zero-cost when
disabled, and non-perturbing — ``tests/test_obs.py`` asserts
bit-identity with metrics on, per scheduler.
"""

from __future__ import annotations

from .metrics import LedgerFanout, MetricsHub, prometheus_from_snapshot

__all__ = [
    "MetricsHub",
    "LedgerFanout",
    "prometheus_from_snapshot",
    "activate_metrics",
    "deactivate_metrics",
    "current_metrics",
]

# The active hub is a plain module global (not a thread-local) for the
# same reason the active tracer is: scheduler pool threads and forked
# discover workers must all see the hub that the pipeline activated.
_ACTIVE: MetricsHub | None = None


def activate_metrics(hub: MetricsHub) -> MetricsHub:
    """Install *hub* as the process-wide active metrics sink."""
    global _ACTIVE
    _ACTIVE = hub
    return hub


def deactivate_metrics() -> None:
    global _ACTIVE
    _ACTIVE = None


def current_metrics() -> MetricsHub | None:
    """The active hub, or ``None`` — instrumented code guards on this."""
    return _ACTIVE
