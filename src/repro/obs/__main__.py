"""CLI for the run registry and regression detector.

::

    python -m repro.obs ls      --registry runs/
    python -m repro.obs show    latest --registry runs/
    python -m repro.obs diff    <run-a> <run-b> --registry runs/
    python -m repro.obs export  latest --registry runs/ --format prometheus
    python -m repro.obs regress latest --registry runs/
    python -m repro.obs regress benchmarks/results/BENCH_cache.json \
        --baseline prior-results/ --warn-only

``regress`` exits 2 on flagged slowdowns (0 with ``--warn-only``), so
CI can gate on it once a trajectory exists.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from .manifest import RUN_SCHEMA_VERSION
from .metrics import prometheus_from_snapshot
from .regress import (
    DEFAULT_MAD_K,
    DEFAULT_METRIC_PATTERN,
    DEFAULT_MIN_RATIO,
    detect,
    doc_metrics,
    load_baseline_docs,
)
from .registry import RunRegistry

__all__ = ["main"]


def _registry(args: argparse.Namespace) -> RunRegistry:
    if args.registry is None:
        raise SystemExit("a registry directory is required (--registry DIR)")
    return RunRegistry(args.registry)


def _cmd_ls(args: argparse.Namespace) -> int:
    registry = _registry(args)
    runs = registry.runs()
    if args.json:
        print(json.dumps(runs, indent=2, sort_keys=True))
        return 0
    if not runs:
        print(f"registry {registry.root} is empty")
        return 0
    print(f"{'run id':<34} {'status':<7} {'scheduler':<11} {'wall s':>9}  host")
    for run in runs:
        wall = run.get("wall_seconds")
        wall_text = f"{wall:.3f}" if wall is not None else "—"
        print(
            f"{run.get('run_id', '?'):<34} "
            f"{run.get('status', '?'):<7} "
            f"{str((run.get('config') or {}).get('scheduler')):<11} "
            f"{wall_text:>9}  "
            f"{(run.get('host') or {}).get('hostname', '?')}"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    run = _registry(args).resolve(args.run)
    if args.json:
        print(json.dumps(run, indent=2, sort_keys=True))
        return 0
    config = run.get("config") or {}
    print(f"run      {run.get('run_id')}")
    print(f"status   {run.get('status')}")
    if run.get("error"):
        err = run["error"]
        print(f"error    {err.get('type')}: {err.get('message')}")
    print(f"host     {(run.get('host') or {}).get('hostname')} "
          f"[{(run.get('host') or {}).get('fingerprint')}]")
    print(f"config   {json.dumps(config, sort_keys=True)}")
    print(f"key      {run.get('config_key')}")
    if run.get("wall_seconds") is not None:
        print(f"wall     {run['wall_seconds']:.3f} s")
    phases = run.get("phase_seconds") or {}
    if phases:
        print("phases")
        for name in sorted(phases):
            print(f"  {name:<28} {phases[name]:.3f} s")
    ledger = (run.get("ledger") or {}).get("category_seconds") or {}
    if ledger:
        print("ledger (sum over ranks)")
        for name in sorted(ledger):
            print(f"  {name:<28} {ledger[name]:.6f} s")
    if run.get("cache"):
        print(f"cache    {json.dumps(run['cache'], sort_keys=True)}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    registry = _registry(args)
    run_a = registry.resolve(args.run_a)
    run_b = registry.resolve(args.run_b)
    flat_a = doc_metrics(run_a)
    flat_b = doc_metrics(run_b)
    keys = sorted(set(flat_a) | set(flat_b))
    print(f"{'metric':<44} {'a':>12} {'b':>12} {'delta':>10}")
    for key in keys:
        a, b = flat_a.get(key), flat_b.get(key)
        if a is None or b is None:
            print(f"{key:<44} {a if a is not None else '—':>12} "
                  f"{b if b is not None else '—':>12} {'—':>10}")
            continue
        if a == b and not args.all:
            continue
        delta = f"{100.0 * (b - a) / a:+.1f}%" if a else "—"
        print(f"{key:<44} {a:>12.6g} {b:>12.6g} {delta:>10}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    run = _registry(args).resolve(args.run)
    if args.format == "json":
        text = json.dumps(run, indent=2, sort_keys=True)
    else:
        snapshot = run.get("metrics") or {}
        extra: list[str] = []
        labels = (
            f'{{run_id="{run.get("run_id")}",status="{run.get("status")}",'
            f'config_key="{run.get("config_key")}"}}'
        )
        extra.append("# TYPE pastis_run_info gauge")
        extra.append(f"pastis_run_info{labels} 1")
        for name, value in sorted((run.get("phase_seconds") or {}).items()):
            extra.append(f'pastis_phase_seconds{{phase="{name}"}} {value:.9g}')
        for name, value in sorted(
            ((run.get("ledger") or {}).get("category_seconds") or {}).items()
        ):
            extra.append(f'pastis_ledger_total_seconds{{category="{name}"}} {value:.9g}')
        if run.get("wall_seconds") is not None:
            extra.append(f"pastis_wall_seconds {run['wall_seconds']:.9g}")
        text = prometheus_from_snapshot(snapshot, extra_lines=extra)
    if args.output:
        Path(args.output).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    target_path = Path(args.target)
    registry = RunRegistry(args.registry) if args.registry else None
    if target_path.suffix == ".json" and target_path.exists():
        target_doc = json.loads(target_path.read_text())
        target_label = str(target_path)
    elif registry is not None:
        target_doc = registry.resolve(args.target)
        target_label = target_doc.get("run_id", args.target)
    else:
        raise SystemExit(
            f"target {args.target!r} is neither a JSON file nor (without "
            "--registry) resolvable as a run"
        )

    bench, host = None, None
    meta = target_doc.get("meta")
    if isinstance(meta, dict):
        bench = meta.get("bench")
        host = (meta.get("host") or {}).get("fingerprint")
    elif isinstance(target_doc.get("host"), dict):
        host = target_doc["host"].get("fingerprint")

    if args.baseline:
        baselines = load_baseline_docs(args.baseline, bench=bench, host=host)
    elif registry is not None:
        baselines = registry.baselines_for(target_doc)
    else:
        raise SystemExit("no baselines: pass --baseline PATH or --registry DIR")
    baselines = [doc for doc in baselines if doc is not target_doc]

    if not baselines:
        print(f"regress {target_label}: no comparable baselines — nothing to check")
        return 0

    findings = detect(
        doc_metrics(target_doc),
        [doc_metrics(doc) for doc in baselines],
        pattern=args.metric,
        min_ratio=args.min_ratio,
        mad_k=args.mad_k,
    )
    if args.json:
        print(json.dumps([vars(f) | {"ratio": f.ratio} for f in findings], indent=2))
    elif not findings:
        print(
            f"regress {target_label}: OK — no slowdowns against "
            f"{len(baselines)} baseline run{'s' if len(baselines) != 1 else ''}"
        )
    else:
        print(f"regress {target_label}: {len(findings)} slowdown(s) flagged")
        for finding in findings:
            print(f"  REGRESSION {finding.describe()}")
    if findings and not args.warn_only:
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=f"run registry + regression tools (manifest schema v{RUN_SCHEMA_VERSION})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_registry(p: argparse.ArgumentParser) -> None:
        p.add_argument("--registry", help="registry directory (PastisParams.run_registry)")

    p_ls = sub.add_parser("ls", help="list stored runs")
    add_registry(p_ls)
    p_ls.add_argument("--json", action="store_true", help="full manifests as JSON")
    p_ls.set_defaults(func=_cmd_ls)

    p_show = sub.add_parser("show", help="show one run manifest")
    add_registry(p_show)
    p_show.add_argument("run", help="run id, unique prefix, or 'latest'")
    p_show.add_argument("--json", action="store_true")
    p_show.set_defaults(func=_cmd_show)

    p_diff = sub.add_parser("diff", help="numeric diff of two runs")
    add_registry(p_diff)
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    p_diff.add_argument("--all", action="store_true", help="include unchanged metrics")
    p_diff.set_defaults(func=_cmd_diff)

    p_export = sub.add_parser("export", help="export a run (Prometheus text or JSON)")
    add_registry(p_export)
    p_export.add_argument("run")
    p_export.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus"
    )
    p_export.add_argument("-o", "--output", help="write to a file instead of stdout")
    p_export.set_defaults(func=_cmd_export)

    p_reg = sub.add_parser(
        "regress", help="flag slowdowns against stored baselines (exit 2 on findings)"
    )
    add_registry(p_reg)
    p_reg.add_argument("target", help="run ref, run.json, or BENCH_*.json path")
    p_reg.add_argument(
        "--baseline",
        action="append",
        help="baseline file/dir (repeatable); default: comparable registry runs",
    )
    p_reg.add_argument("--metric", default=DEFAULT_METRIC_PATTERN,
                       help="regex selecting which flattened keys to guard")
    p_reg.add_argument("--min-ratio", type=float, default=DEFAULT_MIN_RATIO)
    p_reg.add_argument("--mad-k", type=float, default=DEFAULT_MAD_K)
    p_reg.add_argument("--warn-only", action="store_true",
                       help="report findings but always exit 0")
    p_reg.add_argument("--json", action="store_true")
    p_reg.set_defaults(func=_cmd_regress)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
