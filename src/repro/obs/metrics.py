"""Unified metrics facade: typed counters, gauges, and histograms.

One :class:`MetricsHub` per pipeline run collects everything the run
measures about itself — ledger seconds per category (via the same hook
protocol :class:`repro.trace.TraceRecorder` implements), phase timers,
cache hit/miss counters, scheduler lane stats, and per-SUMMA-stage
kernel dispatch records (measured compression factor + per-kernel
seconds, the raw material for online adaptive dispatch).

Design constraints, in order:

* **non-perturbing** — collection never touches the data path; every
  instrument is a dict update under one lock.  Bit-identity with
  metrics on is asserted per scheduler in ``tests/test_obs.py``.
* **near-zero cost when off** — instrumented code guards on
  ``current_metrics() is not None`` (one global read); no hub, no cost.
* **process-safe** — forked discover workers record into a fresh
  journaling hub whose events ride the block header home, where the
  parent merges them in block order (the ``RecordingLedger`` pattern).

This module depends only on the standard library so low-level code
(``repro.sparse.kernels``, ``repro.distsparse.summa``) can import it
without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "MetricsHub",
    "LedgerFanout",
    "prometheus_from_snapshot",
]

#: labels are stored canonically as a sorted tuple of (key, str(value))
LabelKey = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Hist:
    """Running aggregate of one histogram series: count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsHub:
    """Process-safe store of labeled counters, gauges, and histograms.

    The typed facade is :meth:`counter_add`, :meth:`gauge_set`, and
    :meth:`observe`; labels are passed as keyword arguments::

        hub.counter_add("spgemm_dispatch", 1.0, kernel="gustavson")
        hub.observe("spgemm_kernel_seconds", dt, backend="auto", stage="2")

    The hub also speaks the :class:`~repro.mpi.costmodel.CostLedger`
    trace-hook protocol (:meth:`bump` / :meth:`set_value`), so it can be
    attached to ``ledger.trace`` directly — ``ledger.<category>`` names
    become a ``ledger_seconds`` counter labeled by category.

    With ``journal=True`` every mutation is also appended to an event
    list; :meth:`drain` hands the events to a transport (the process
    scheduler's block header) and the receiving hub applies them with
    :meth:`merge`.  Replaying events through ``merge`` is deterministic:
    the parent admits blocks in block order, so merged metrics are
    reproducible across worker counts.
    """

    def __init__(self, journal: bool = False) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], float] = {}
        self._gauges: dict[tuple[str, LabelKey], float] = {}
        self._hists: dict[tuple[str, LabelKey], _Hist] = {}
        self._journal: list[tuple] | None = [] if journal else None

    # ---- typed facade ----------------------------------------------------

    def counter_add(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)
            if self._journal is not None:
                self._journal.append(("c", name, key[1], float(value)))

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            self._gauges[key] = float(value)
            if self._journal is not None:
                self._journal.append(("g", name, key[1], float(value)))

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = (name, _labels_key(labels))
        with self._lock:
            hist = self._hists.get(key)
            if hist is None:
                hist = self._hists[key] = _Hist()
            hist.observe(float(value))
            if self._journal is not None:
                self._journal.append(("h", name, key[1], float(value)))

    # ---- domain recorders ------------------------------------------------

    def record_spgemm_stage(
        self,
        backend: str,
        stage: int | str,
        seconds: float,
        flops: float,
        compression_factor: float,
    ) -> None:
        """One SUMMA-stage kernel invocation: measured CF + seconds."""
        self.counter_add("spgemm_stage_invocations", 1.0, backend=backend)
        self.counter_add("spgemm_stage_flops", float(flops), backend=backend)
        self.observe(
            "spgemm_kernel_seconds", seconds, backend=backend, stage=str(stage)
        )
        self.observe(
            "spgemm_compression_factor",
            compression_factor,
            backend=backend,
            stage=str(stage),
        )

    def record_dispatch(self, kernel: str, predicted_cf: float | None) -> None:
        """One ``spgemm_auto`` routing decision."""
        self.counter_add("spgemm_dispatch", 1.0, kernel=kernel)
        if predicted_cf is not None:
            self.observe(
                "spgemm_predicted_compression_factor", predicted_cf, kernel=kernel
            )

    # ---- CostLedger trace-hook protocol ----------------------------------

    def bump(self, name: str, delta: float) -> None:
        if name.startswith("ledger."):
            self.counter_add("ledger_seconds", delta, category=name[7:])
        else:
            self.counter_add(name, delta)

    def set_value(self, name: str, value: float) -> None:
        if name.startswith("ledger."):
            # cache replay restores absolute per-category sums
            key = ("ledger_seconds", _labels_key({"category": name[7:]}))
            with self._lock:
                self._counters[key] = float(value)
                if self._journal is not None:
                    self._journal.append(("cs", "ledger_seconds", key[1], float(value)))
        else:
            self.gauge_set(name, value)

    # ---- worker journaling -----------------------------------------------

    def drain(self) -> list[tuple]:
        """Return and clear the journaled events (journaling hubs only)."""
        with self._lock:
            events = self._journal or []
            if self._journal is not None:
                self._journal = []
            return events

    def merge(self, events: Iterable[tuple]) -> None:
        """Apply events drained from another hub, in order."""
        with self._lock:
            for kind, name, labels, value in events:
                key = (name, tuple(tuple(pair) for pair in labels))
                if kind == "c":
                    self._counters[key] = self._counters.get(key, 0.0) + value
                elif kind == "cs":
                    self._counters[key] = value
                elif kind == "g":
                    self._gauges[key] = value
                elif kind == "h":
                    hist = self._hists.get(key)
                    if hist is None:
                        hist = self._hists[key] = _Hist()
                    hist.observe(value)
                if self._journal is not None:
                    self._journal.append((kind, name, key[1], value))

    # ---- views -----------------------------------------------------------

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Current value of one counter or gauge (tests/diagnostics)."""
        key = (name, _labels_key(labels))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, default)

    def histogram(self, name: str, **labels: Any) -> dict[str, float] | None:
        key = (name, _labels_key(labels))
        with self._lock:
            hist = self._hists.get(key)
            return hist.as_dict() if hist is not None else None

    def snapshot(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-serializable dump of every series, deterministically sorted."""

        def row(key: tuple[str, LabelKey], extra: dict[str, float]) -> dict[str, Any]:
            name, labels = key
            return {"name": name, "labels": dict(labels), **extra}

        with self._lock:
            return {
                "counters": [
                    row(key, {"value": value})
                    for key, value in sorted(self._counters.items())
                ],
                "gauges": [
                    row(key, {"value": value})
                    for key, value in sorted(self._gauges.items())
                ],
                "histograms": [
                    row(key, hist.as_dict())
                    for key, hist in sorted(self._hists.items())
                ],
            }

    def prometheus_text(self, prefix: str = "pastis_") -> str:
        return prometheus_from_snapshot(self.snapshot(), prefix=prefix)


class LedgerFanout:
    """Forward the ledger trace hook to several sinks (tracer + hub)."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def bump(self, name: str, delta: float) -> None:
        for sink in self.sinks:
            sink.bump(name, delta)

    def set_value(self, name: str, value: float) -> None:
        for sink in self.sinks:
            sink.set_value(name, value)


# ---- Prometheus text exposition ------------------------------------------


def _prom_name(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_prom_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def prometheus_from_snapshot(
    snapshot: Mapping[str, Any],
    prefix: str = "pastis_",
    extra_lines: Iterable[str] = (),
) -> str:
    """Render a :meth:`MetricsHub.snapshot` in Prometheus text format.

    Histograms are exposed as ``_count``/``_sum`` summary pairs plus
    ``_min``/``_max`` gauges (native histogram buckets would force a
    bucket layout on callers; the four aggregates are what the
    regression detector and adaptive dispatch consume).
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def emit(name: str, kind: str, labels: Mapping[str, str], value: float) -> None:
        full = _prom_name(prefix + name)
        if full not in seen_types:
            lines.append(f"# TYPE {full} {kind}")
            seen_types.add(full)
        lines.append(f"{full}{_prom_labels(labels)} {value:.9g}")

    for entry in snapshot.get("counters", []):
        emit(entry["name"], "counter", entry["labels"], entry["value"])
    for entry in snapshot.get("gauges", []):
        emit(entry["name"], "gauge", entry["labels"], entry["value"])
    for entry in snapshot.get("histograms", []):
        name, labels = entry["name"], entry["labels"]
        emit(name + "_count", "counter", labels, entry["count"])
        emit(name + "_sum", "counter", labels, entry["sum"])
        emit(name + "_min", "gauge", labels, entry["min"])
        emit(name + "_max", "gauge", labels, entry["max"])
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"
