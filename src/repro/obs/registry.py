"""Persistent local run registry: one atomic ``run.json`` per run.

Layout under the registry root (``PastisParams.run_registry``)::

    <root>/runs/<run_id>.json

There is deliberately no index file: the directory *is* the index
(run ids sort chronologically), so a SIGKILL mid-write can never leave
the registry inconsistent — each manifest lands via the same
temp-file + ``os.replace`` dance the stage cache uses, and a killed run
leaves either a complete manifest or none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..config import atomic_write_text
from .manifest import RUN_SCHEMA_VERSION

__all__ = ["RunRegistry"]


class RunRegistry:
    """Append-only store of run manifests under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"

    # ---- writing ---------------------------------------------------------

    def record(self, manifest: dict[str, Any]) -> Path:
        """Atomically persist one manifest; returns its path."""
        run_id = manifest["run_id"]
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        path = self.runs_dir / f"{run_id}.json"
        atomic_write_text(path, json.dumps(_jsonable(manifest), indent=2, sort_keys=True))
        return path

    # ---- reading ---------------------------------------------------------

    def run_ids(self) -> list[str]:
        """All stored run ids, oldest first (ids sort chronologically)."""
        if not self.runs_dir.is_dir():
            return []
        return sorted(p.stem for p in self.runs_dir.glob("*.json"))

    def load(self, run_id: str) -> dict[str, Any]:
        path = self.runs_dir / f"{run_id}.json"
        manifest = json.loads(path.read_text())
        schema = manifest.get("schema")
        if not isinstance(schema, int) or schema > RUN_SCHEMA_VERSION:
            raise ValueError(
                f"run {run_id}: manifest schema {schema!r} is newer than "
                f"this reader (supports <= {RUN_SCHEMA_VERSION})"
            )
        return manifest

    def runs(self) -> list[dict[str, Any]]:
        return [self.load(run_id) for run_id in self.run_ids()]

    def latest(self) -> dict[str, Any] | None:
        ids = self.run_ids()
        return self.load(ids[-1]) if ids else None

    def resolve(self, ref: str) -> dict[str, Any]:
        """Load a run by id, unique id prefix, or the literal ``latest``."""
        ids = self.run_ids()
        if ref == "latest":
            if not ids:
                raise KeyError(f"registry {self.root} is empty")
            return self.load(ids[-1])
        if ref in ids:
            return self.load(ref)
        matches = [run_id for run_id in ids if run_id.startswith(ref)]
        if len(matches) == 1:
            return self.load(matches[0])
        if matches:
            raise KeyError(f"run ref {ref!r} is ambiguous: {matches}")
        raise KeyError(f"no run matching {ref!r} in {self.root}")

    def baselines_for(
        self, manifest: dict[str, Any], status: str = "ok"
    ) -> list[dict[str, Any]]:
        """Stored runs comparable to *manifest*: same host fingerprint and
        same ``config_key``, excluding the run itself."""
        host = (manifest.get("host") or {}).get("fingerprint")
        key = manifest.get("config_key")
        out = []
        for run in self.runs():
            if run.get("run_id") == manifest.get("run_id"):
                continue
            if status is not None and run.get("status") != status:
                continue
            if host and (run.get("host") or {}).get("fingerprint") != host:
                continue
            if key and run.get("config_key") != key:
                continue
            out.append(run)
        return out


def _jsonable(value: Any) -> Any:
    """Minimal numpy-safe conversion (mirrors ``repro.io.report._jsonable``
    without importing the report stack into the registry)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            return value
    return value
