"""The asymmetric query-vs-database search path.

The serving contract is *row restriction*: a query run over query set ``Q``
must produce, for every query that is a database member, byte-for-byte the
rows an all-vs-all run over the database would have produced — same block
records, same edges, same SpGEMM stats.  The whole design follows from one
decision: **the query operand lives in database row coordinates.**

* A member query (same residues as a database sequence, resolved by content
  digest) occupies its database row; its k-mer row is rebuilt bitwise equal
  to the database row (same extraction, the database's persisted banned
  k-mer set instead of a recount, same substitute ordering, same dedup).
* A novel query is appended at a fresh row ``>= n_db``.
* The output schedule is ``BlockSchedule(n_db + n_novel, n_db, br, bc_index)``
  and only block rows containing a populated query row are computed
  (:class:`QueryScheme`).

Because both output coordinates are database-global ids, every downstream
stage works unchanged: ``drop_self_pairs`` removes the query-vs-itself
diagonal hit, the symmetric parity/triangularity prunes stay meaningful
(``query_dedup=True``), the alignment phase indexes one combined
database∪novel :class:`~repro.sequences.sequence.SequenceSet`, and when the
query set has no novel members the operand *shape equals the database
operand's shape*, so the rank partition — and with it every per-rank stripe,
record and ledger charge of a fully-populated block row — is bitwise
identical to the all-vs-all run's.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.kmer_matrix import KmerMatrixInfo, extract_seed_triples
from ..core.load_balance import LoadBalancingScheme, make_scheme
from ..core.params import PastisParams
from ..distsparse.blocked_summa import BlockSchedule
from ..distsparse.distribute import distribute_coo
from ..distsparse.distmat import DistSparseMatrix
from ..distsparse.shards import ShardedStripeMatrix
from ..mpi.communicator import SimCommunicator
from ..sequences.sequence import SequenceSet
from ..sparse.coo import CooMatrix
from ..sparse.dcsc import DcscMatrix
from .index import KmerIndex

from ..core.engine.stages import BlockTask


@dataclass
class QueryScheme(LoadBalancingScheme):
    """Row-restriction wrapper around the batch load-balancing schemes.

    Computes only block rows that contain at least one populated (query)
    row.  With ``base=None`` (serving semantics) elements pass through
    unpruned — each query row keeps all its candidates, so row ``q``
    carries every match of ``q`` exactly once.  With a base scheme
    (``query_dedup=True``) the base's symmetric prune applies verbatim in
    database coordinates, making the run the literal row-restriction of
    the all-vs-all stage graph.
    """

    name: str = "query"
    base: LoadBalancingScheme | None = None
    #: sorted unique global row ids occupied by queries
    populated_rows: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    def _row_block_populated(self, schedule: BlockSchedule, r: int) -> bool:
        lo, hi = schedule.row_range(r)
        i = int(np.searchsorted(self.populated_rows, lo))
        return i < self.populated_rows.size and int(self.populated_rows[i]) < hi

    def blocks_to_compute(self, schedule: BlockSchedule) -> list[tuple[int, int]]:
        source = (
            self.base.blocks_to_compute(schedule)
            if self.base is not None
            else schedule.all_blocks()
        )
        return [(r, c) for r, c in source if self._row_block_populated(schedule, r)]

    def prune(self, block: CooMatrix) -> CooMatrix:
        return self.base.prune(block) if self.base is not None else block


def resolve_queries(queries: SequenceSet, database: SequenceSet) -> np.ndarray:
    """Database row of each query (``-1`` for novel sequences).

    Membership is by residue content (sha256 of the code array); duplicate
    database sequences resolve to the first occurrence.
    """
    if queries.alphabet.name != database.alphabet.name:
        raise ValueError(
            f"query alphabet {queries.alphabet.name!r} does not match the "
            f"database alphabet {database.alphabet.name!r}"
        )
    lookup: dict[bytes, int] = {}
    for i in range(len(database)):
        lookup.setdefault(hashlib.sha256(database.codes(i).tobytes()).digest(), i)
    rows = np.full(len(queries), -1, dtype=np.int64)
    for q in range(len(queries)):
        rows[q] = lookup.get(hashlib.sha256(queries.codes(q).tobytes()).digest(), -1)
    return rows


def build_query_kmer_coo(
    queries: SequenceSet,
    params: PastisParams,
    index: KmerIndex,
    row_ids: np.ndarray,
    n_rows: int,
) -> tuple[CooMatrix, KmerMatrixInfo]:
    """The query operand ``A_query`` in database row coordinates.

    Mirrors :func:`repro.core.kmer_matrix.build_kmer_coo` step for step —
    with the database's persisted banned k-mer set standing in for the
    global frequency filter — so a member query's row is bitwise equal to
    its database row.
    """
    t0 = time.perf_counter()
    seq_ids, kmer_ids, positions, occurrences, substitute_nnz, extractor = (
        extract_seed_triples(
            queries,
            params,
            apply_frequency_filter=False,
            banned_kmers=index.banned_kmers(),
        )
    )
    if extractor.space_size() != index.kmer_space:
        raise ValueError(
            f"query k-mer space {extractor.space_size()} != index k-mer space "
            f"{index.kmer_space} (parameter validation should have caught this)"
        )
    rows = row_ids[seq_ids] if seq_ids.size else seq_ids.astype(np.int64)
    shape = (n_rows, index.kmer_space)
    coo = CooMatrix(shape, rows, kmer_ids, positions.astype(np.int32), check=False)
    coo = coo.sort_rowmajor().deduplicate()
    build_seconds = time.perf_counter() - t0
    dcsc = DcscMatrix.from_coo(coo)
    info = KmerMatrixInfo(
        n_sequences=len(queries),
        kmer_space=shape[1],
        nnz=coo.nnz,
        kmer_occurrences=occurrences,
        substitute_nnz=substitute_nnz,
        build_seconds=build_seconds,
        hypersparsity_ratio=dcsc.compression_ratio_vs_csc(),
    )
    return coo, info


@dataclass
class QueryRunPlan:
    """Everything the pipeline's query branch hands to the engine."""

    index: KmerIndex
    a_dist: DistSparseMatrix
    b: ShardedStripeMatrix
    schedule: BlockSchedule
    scheme: QueryScheme
    tasks: list[BlockTask]
    #: database sequences (+ appended novel queries), indexed by global row id
    align_sequences: SequenceSet
    n_vertices: int
    kmer_info: KmerMatrixInfo
    #: global output row of each query, in query order
    query_rows: np.ndarray
    n_members: int
    n_novel: int


def open_index_for(params: PastisParams) -> KmerIndex:
    """Open and validate the index a query-mode run points at."""
    index = KmerIndex.open(params.index_dir)
    index.validate_params(params)
    return index


def prepare_query_run(
    params: PastisParams,
    queries: SequenceSet,
    index: KmerIndex,
    comm: SimCommunicator,
) -> QueryRunPlan:
    """Resolve, build and plan one query batch against an opened index."""
    database = index.sequences()
    resolved = resolve_queries(queries, database)
    novel_mask = resolved < 0
    n_novel = int(novel_mask.sum())
    if params.query_dedup and n_novel:
        first = int(np.flatnonzero(novel_mask)[0])
        raise ValueError(
            "query_dedup=True requires every query to be a database member "
            f"(query {first} ({queries.names[first]!r}) is not in the database); "
            "dedup semantics are defined by database coordinates"
        )
    n_db = len(database)
    query_rows = resolved.copy()
    query_rows[novel_mask] = n_db + np.arange(n_novel, dtype=np.int64)
    n_rows = n_db + n_novel

    coo, kmer_info = build_query_kmer_coo(queries, params, index, query_rows, n_rows)
    a_dist = distribute_coo(coo, comm)
    b = index.matrix(comm)

    br_param, _ = params.blocking_factors()
    schedule = BlockSchedule(
        n_rows=n_rows, n_cols=n_db, br=min(br_param, n_rows), bc=index.bc
    )
    base = make_scheme(params.load_balancing) if params.query_dedup else None
    scheme = QueryScheme(base=base, populated_rows=np.unique(query_rows))
    tasks = [BlockTask(r, c) for r, c in scheme.blocks_to_compute(schedule)]

    if n_novel:
        align_sequences = SequenceSet.concatenate(
            [database, queries.subset(np.flatnonzero(novel_mask))]
        )
    else:
        align_sequences = database
    return QueryRunPlan(
        index=index,
        a_dist=a_dist,
        b=b,
        schedule=schedule,
        scheme=scheme,
        tasks=tasks,
        align_sequences=align_sequences,
        n_vertices=n_rows,
        kmer_info=kmer_info,
        query_rows=query_rows,
        n_members=len(queries) - n_novel,
        n_novel=n_novel,
    )
