"""Module entry point: ``python -m repro.serve``."""

import sys

from .cli import main

sys.exit(main())
