"""Query-vs-database serving on top of the batch pipeline.

The batch pipeline answers one question: *all-vs-all over a single FASTA*.
This package adds the production shape from the paper's framing — build the
database k-mer matrix once, persist it, and answer query batches as the
one-sided product ``A_query · B_dbᵀ`` through the same Blocked SUMMA engine:

* :mod:`repro.serve.index` — the persistent on-disk index: the database
  operand ``A_dbᵀ`` blocked into per-rank stripe shards, stamped with the
  stage cache's content digests;
* :mod:`repro.serve.query` — the asymmetric search path behind
  ``PastisParams(mode="query", index_dir=...)``: resolves queries against
  the database, builds the row-sparse query operand in *database row
  coordinates*, and plans a run bit-identical to the corresponding rows of
  an all-vs-all search;
* :mod:`repro.serve.batcher` — :class:`QueryBatcher`, the request-batching
  front end that coalesces submitted query sets, runs them through the
  engine, and models the request queue with the
  :class:`~repro.mpi.costmodel.OverlapWindow` admission algebra;
* :mod:`repro.serve.providers` — the pluggable sequence-provider registry
  (``fasta:…``, ``synthetic:…``) behind one ingestion contract;
* ``python -m repro.serve build|inspect|query`` — the CLI
  (:mod:`repro.serve.cli`).
"""

from .index import (
    INDEX_FORMAT,
    INDEX_VERSION,
    IndexCompatibilityError,
    IndexIntegrityError,
    KmerIndex,
    ServeIndexError,
    build_index,
)
from .providers import (
    SequenceProvider,
    available_providers,
    load_sequences,
    register_provider,
)
from .batcher import BatchResult, QueryBatcher, QueryMatches

__all__ = [
    "INDEX_FORMAT",
    "INDEX_VERSION",
    "ServeIndexError",
    "IndexIntegrityError",
    "IndexCompatibilityError",
    "KmerIndex",
    "build_index",
    "SequenceProvider",
    "available_providers",
    "register_provider",
    "load_sequences",
    "QueryBatcher",
    "QueryMatches",
    "BatchResult",
]
