"""Pluggable sequence providers: one ingestion contract, swappable sources.

A provider turns a spec string into a :class:`SequenceSet`.  Specs are
``name:arguments`` with provider-specific argument grammar::

    fasta:/path/to/db.fasta           # read a FASTA file
    synthetic:n_sequences=40,seed=3   # seeded synthetic metagenome
    synthetic:40                      # shorthand: bare count

The registry is open: ``register_provider("s3", my_loader)`` plugs in a new
source without touching the CLI or the batcher, both of which only ever call
:func:`load_sequences`.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..sequences import (
    SequenceSet,
    SyntheticDatasetConfig,
    read_fasta,
    synthetic_dataset,
)


class SequenceProvider(Protocol):
    """The ingestion contract: argument string in, sequences out."""

    def __call__(self, args: str) -> SequenceSet: ...


_REGISTRY: dict[str, SequenceProvider] = {}


def register_provider(name: str, provider: SequenceProvider) -> None:
    """Register (or replace) a provider under ``name``."""
    if not name or ":" in name:
        raise ValueError(f"invalid provider name {name!r}")
    _REGISTRY[name] = provider


def available_providers() -> list[str]:
    """Registered provider names, sorted."""
    return sorted(_REGISTRY)


def load_sequences(spec: str) -> SequenceSet:
    """Resolve a ``name:arguments`` spec through the registry."""
    name, sep, args = spec.partition(":")
    if not sep:
        raise ValueError(
            f"sequence spec {spec!r} needs the form 'provider:arguments' "
            f"(providers: {', '.join(available_providers())})"
        )
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown sequence provider {name!r} "
            f"(providers: {', '.join(available_providers())})"
        )
    return _REGISTRY[name](args)


# ------------------------------------------------------------------ built-ins
def _fasta_provider(args: str) -> SequenceSet:
    if not args:
        raise ValueError("fasta provider needs a path: 'fasta:/path/to/file.fasta'")
    return read_fasta(args)


_SYNTHETIC_FIELDS: dict[str, Callable[[str], object]] = {
    "n_sequences": int,
    "family_fraction": float,
    "mean_family_size": float,
    "mutation_rate": float,
    "indel_rate": float,
    "fragment_probability": float,
    "seed": int,
}


def _synthetic_provider(args: str) -> SequenceSet:
    if not args:
        raise ValueError(
            "synthetic provider needs arguments: 'synthetic:n_sequences=40,seed=3' "
            "or the bare-count shorthand 'synthetic:40'"
        )
    if args.isdigit():
        return synthetic_dataset(n_sequences=int(args))
    kwargs: dict[str, object] = {}
    for part in args.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or key not in _SYNTHETIC_FIELDS:
            raise ValueError(
                f"bad synthetic argument {part!r} "
                f"(known: {', '.join(sorted(_SYNTHETIC_FIELDS))})"
            )
        kwargs[key] = _SYNTHETIC_FIELDS[key](value.strip())
    return synthetic_dataset(config=SyntheticDatasetConfig(**kwargs))


register_provider("fasta", _fasta_provider)
register_provider("synthetic", _synthetic_provider)
