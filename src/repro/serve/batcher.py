"""The request-batching front end of the serving layer.

:class:`QueryBatcher` sits between callers and the engine: requests are
*submitted* (each a named :class:`SequenceSet` of queries), coalesced into
batches bounded by ``max_batch_queries``, and *drained* — each batch runs
as one ``mode="query"`` pipeline execution against the configured index,
and each request gets back its per-query matches split out of the batch
result.

The request queue is modeled with the same
:class:`~repro.mpi.costmodel.OverlapWindow` admission algebra the engine's
overlapped scheduler uses: each batch's discovery lane (its per-rank
``spgemm`` seconds) is pushed as a background stage and its alignment lane
runs as the foreground slot, so batch ``b+1``'s discovery hides behind
batch ``b``'s alignment exactly like pre-blocking hides block ``b+1``'s
SpGEMM behind block ``b``'s alignment.  The modeled queue clock satisfies
the window's reconciliation identity per drain::

    sum(align) + sum(discover) - sum(hidden) == clock        (per rank)

Per-batch wall and modeled latency are surfaced through a
:class:`~repro.obs.MetricsHub` (``serve_*`` series) and, when
``params.run_registry`` is set, every batch appends its own run manifest to
the registry like any other pipeline run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.params import PastisParams
from ..core.pipeline import PastisPipeline, SearchResult
from ..mpi.costmodel import CostLedger, OverlapWindow
from ..obs import MetricsHub
from ..sequences.sequence import SequenceSet

#: per-query match rows handed back to requesters: the partner's global
#: database row (or novel-query row) plus the admitted edge's metrics
MATCH_DTYPE = np.dtype(
    [("partner", np.int64), ("score", np.int32), ("ani", np.float32), ("coverage", np.float32)]
)

SERVE_HIDDEN_CATEGORY = "serve_overlap_hidden"


@dataclass
class QueryMatches:
    """One request's answer: per-query match arrays (MATCH_DTYPE)."""

    request_id: str
    query_names: list[str]
    #: one MATCH_DTYPE array per query, partner-sorted
    matches: list[np.ndarray]
    #: global output row of each query (database row, or novel row >= n_db)
    rows: np.ndarray
    batch_index: int
    #: real seconds the batch's pipeline execution took
    batch_wall_seconds: float
    #: modeled completion clock of the batch on the request queue (max rank)
    queue_clock_seconds: float

    @property
    def total_matches(self) -> int:
        return sum(int(m.size) for m in self.matches)


@dataclass
class BatchResult:
    """One executed batch: the raw pipeline result plus queue accounting."""

    index: int
    result: SearchResult
    n_queries: int
    request_ids: list[str]
    wall_seconds: float
    queue_clock_seconds: float


@dataclass
class _Request:
    request_id: str
    queries: SequenceSet


class QueryBatcher:
    """Admit query sets, coalesce into batches, schedule through the engine.

    Parameters
    ----------
    index_dir:
        The serve index every batch runs against.
    params:
        Base parameters; ``mode``/``index_dir`` are overridden.  ``None``
        uses defaults.
    max_batch_queries:
        Coalescing bound: a drain packs consecutive requests into batches
        of at most this many queries (a single oversized request still
        forms its own batch — requests are never split).
    admission_depth:
        Depth of the modeled request queue (how many batches' discovery
        may be in flight behind the current batch's alignment), mirroring
        ``preblock_depth``.
    hub:
        Metrics sink; a private hub is created when omitted (always on —
        per-batch latency is the serving layer's primary observable).
    """

    def __init__(
        self,
        index_dir: str,
        params: PastisParams | None = None,
        *,
        max_batch_queries: int = 32,
        admission_depth: int = 1,
        hub: MetricsHub | None = None,
    ) -> None:
        if max_batch_queries < 1:
            raise ValueError("max_batch_queries must be >= 1")
        if admission_depth < 1:
            raise ValueError("admission_depth must be >= 1")
        base = params if params is not None else PastisParams()
        self.params = base.replace(mode="query", index_dir=str(index_dir))
        self.max_batch_queries = max_batch_queries
        self.admission_depth = admission_depth
        self.hub = hub if hub is not None else MetricsHub()
        self._pending: list[_Request] = []
        self._next_request = 0
        self.batches: list[BatchResult] = []
        self._ledger = CostLedger(self.params.nodes)
        self._clock = np.zeros(self.params.nodes)

    # ------------------------------------------------------------------ admission
    def submit(self, queries: SequenceSet, request_id: str | None = None) -> str:
        """Enqueue one request; returns its id (answered at the next drain)."""
        if request_id is None:
            request_id = f"req-{self._next_request:05d}"
        self._next_request += 1
        self._pending.append(_Request(request_id=request_id, queries=queries))
        self.hub.counter_add("serve_requests", 1.0)
        self.hub.counter_add("serve_queries", float(len(queries)))
        return request_id

    @property
    def pending_requests(self) -> int:
        return len(self._pending)

    def _coalesce(self) -> list[list[_Request]]:
        """Pack pending requests into batches of <= max_batch_queries."""
        batches: list[list[_Request]] = []
        current: list[_Request] = []
        count = 0
        for request in self._pending:
            n = len(request.queries)
            if current and count + n > self.max_batch_queries:
                batches.append(current)
                current, count = [], 0
            current.append(request)
            count += n
        if current:
            batches.append(current)
        return batches

    # ------------------------------------------------------------------ draining
    def drain(self) -> list[QueryMatches]:
        """Run every pending request through the engine; answer all of them.

        Batches execute sequentially (one engine); the *modeled* request
        queue runs them through the OverlapWindow admission algebra, so the
        reported queue clock reflects batch ``b+1``'s discovery hiding
        behind batch ``b``'s alignment.
        """
        grouped = self._coalesce()
        self._pending = []
        if not grouped:
            return []

        # execute every batch, collecting its pipeline result + lane seconds
        executed: list[tuple[list[_Request], SearchResult, float]] = []
        for group in grouped:
            queries = (
                group[0].queries
                if len(group) == 1
                else SequenceSet.concatenate([request.queries for request in group])
            )
            t0 = time.perf_counter()
            result = PastisPipeline(self.params).run(queries)
            executed.append((group, result, time.perf_counter() - t0))

        # model the request queue: discovery lanes are the background FIFO,
        # alignment lanes the foreground slots (the engine's own algebra,
        # one level up)
        discover = [run.ledger.per_rank("spgemm") for _, run, _ in executed]
        align = [run.ledger.per_rank("align") for _, run, _ in executed]
        for b in range(len(executed)):
            self._ledger.charge_all("serve_discover", discover[b])
            self._ledger.charge_all("serve_align", align[b])
        window = OverlapWindow(self._ledger, self._clock, SERVE_HIDDEN_CATEGORY)
        n = len(executed)
        window.push(discover[0])
        window.barrier(1)
        pushed = 1
        completions: list[float] = []
        for b in range(n):
            while pushed <= min(b + self.admission_depth, n - 1):
                window.push(discover[pushed])
                pushed += 1
            window.foreground(align[b], require_seq=b + 1 if b + 1 < n else None)
            completions.append(float(self._clock.max()))
        window.finish()

        # split each batch's edges back out to its requests
        answers: list[QueryMatches] = []
        for offset, (group, result, wall) in enumerate(executed):
            batch_index = len(self.batches)
            self.batches.append(
                BatchResult(
                    index=batch_index,
                    result=result,
                    n_queries=sum(len(r.queries) for r in group),
                    request_ids=[r.request_id for r in group],
                    wall_seconds=wall,
                    queue_clock_seconds=completions[offset],
                )
            )
            edges = result.similarity_graph.edges
            lo = 0
            for request in group:
                hi = lo + len(request.queries)
                rows = result.query_rows[lo:hi]
                matches = [_matches_for_row(edges, int(row)) for row in rows]
                answers.append(
                    QueryMatches(
                        request_id=request.request_id,
                        query_names=[str(name) for name in request.queries.names],
                        matches=matches,
                        rows=rows.copy(),
                        batch_index=batch_index,
                        batch_wall_seconds=wall,
                        queue_clock_seconds=completions[offset],
                    )
                )
                lo = hi
            self.hub.counter_add("serve_batches", 1.0)
            self.hub.counter_add("serve_matches", float(result.stats.similar_pairs))
            self.hub.observe("serve_batch_wall_seconds", wall)
            self.hub.observe(
                "serve_batch_align_seconds", float(np.max(align[offset]))
            )
            self.hub.gauge_set("serve_queue_clock_seconds", completions[offset])
        self.hub.gauge_set(
            "serve_overlap_hidden_seconds",
            float(self._ledger.per_rank(SERVE_HIDDEN_CATEGORY).sum()),
        )
        return answers

    # ------------------------------------------------------------------ accounting
    def queue_summary(self) -> dict:
        """The modeled request queue's books (reconciliation identity holds)."""
        discover = self._ledger.per_rank("serve_discover")
        align = self._ledger.per_rank("serve_align")
        hidden = self._ledger.per_rank(SERVE_HIDDEN_CATEGORY)
        return {
            "batches": len(self.batches),
            "queries": sum(batch.n_queries for batch in self.batches),
            "clock_seconds": float(self._clock.max()),
            "discover_seconds": float(discover.sum()),
            "align_seconds": float(align.sum()),
            "hidden_seconds": float(hidden.sum()),
            "serial_clock_seconds": float((discover + align).max()),
            "identity_residual": float(
                np.abs(align + discover - hidden - self._clock).max()
            ),
        }


def _matches_for_row(edges: np.ndarray, row: int) -> np.ndarray:
    """One query row's matches from the canonicalized (row < col) edge set."""
    as_row = edges[edges["row"] == row]
    as_col = edges[edges["col"] == row]
    out = np.empty(as_row.size + as_col.size, dtype=MATCH_DTYPE)
    out["partner"][: as_row.size] = as_row["col"]
    out["partner"][as_row.size:] = as_col["row"]
    for key in ("score", "ani", "coverage"):
        out[key][: as_row.size] = as_row[key]
        out[key][as_row.size:] = as_col[key]
    return np.sort(out, order="partner")
