"""The persistent database k-mer index.

``build_index`` runs the batch pipeline's own k-mer matrix construction
(:func:`repro.core.kmer_matrix.build_kmer_coo`) once over the database,
partitions the transposed operand ``Bᵀ = A_dbᵀ`` onto the 2D process grid,
and persists it as the exact per-rank column-stripe shards Blocked SUMMA
consumes (:mod:`repro.distsparse.shards`).  Every artifact is stamped with
the same content digests the PR 6 stage cache keys on —
:func:`repro.core.engine.cache.sequence_digest` for the database residues,
:func:`repro.core.engine.cache.stripe_digest` per stripe — so a query run
served from the index produces byte-for-byte the cache keys an all-vs-all
run over the database would.

Disk layout (all files written atomically, ``index.json`` last so a
killed build never leaves a manifest pointing at missing shards)::

    index_dir/
      index.json                       # manifest: format/version, digests,
                                       #   blocking, canonical params token
      sequences.npz                    # residues + names + banned k-mer ids
      shards/stripe-CCCCC-rank-RRR.npz # rank R's piece of column stripe C

Failure taxonomy: :class:`IndexIntegrityError` — the index contradicts its
own stamps (tampered sequences, corrupt or truncated shard); never answered
from, always refused with the offending file named.
:class:`IndexCompatibilityError` — the index is healthy but was built with
different parameters than the run asking to use it.
"""

from __future__ import annotations

import io
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..config import atomic_write_bytes, atomic_write_text
from ..core.engine.cache import sequence_digest, stripe_digest
from ..core.kmer_matrix import KmerMatrixInfo, build_kmer_coo
from ..core.params import PastisParams
from ..distsparse.blocked_summa import BlockSchedule
from ..distsparse.distmat import DistSparseMatrix
from ..distsparse.shards import (
    ShardedStripeMatrix,
    load_stripe_shards,
    shard_filename,
    write_stripe_shards,
)
from ..mpi.communicator import SimCommunicator
from ..mpi.process_grid import is_perfect_square
from ..sequences.alphabet import MURPHY10, PROTEIN
from ..sequences.kmers import KmerExtractor
from ..sequences.sequence import SequenceSet

INDEX_FORMAT = "pastis-kmer-index"
INDEX_VERSION = 1
MANIFEST_NAME = "index.json"
SEQUENCES_NAME = "sequences.npz"
SHARD_DIR = "shards"

_ALPHABETS = {PROTEIN.name: PROTEIN, MURPHY10.name: MURPHY10}


class ServeIndexError(RuntimeError):
    """Base class of every serve-index failure."""


class IndexIntegrityError(ServeIndexError):
    """The index contradicts its own digest stamps (stale or corrupt)."""


class IndexCompatibilityError(ServeIndexError):
    """The index was built with different parameters than the run needs."""


def index_params_token(params: PastisParams) -> dict:
    """The parameter fields that determine the database operand.

    A query run must match these exactly — they decide which k-mers exist,
    which are substituted, which are globally banned, and how the operand
    is laid out over ranks.
    """
    return {
        "kmer_length": params.kmer_length,
        "seed_alphabet": params.seed_alphabet,
        "substitute_kmers": params.substitute_kmers,
        "max_kmer_frequency": params.max_kmer_frequency,
        "nodes": params.nodes,
    }


def banned_kmer_ids(sequences: SequenceSet, params: PastisParams) -> np.ndarray:
    """K-mer ids the database's global frequency filter discarded.

    ``max_kmer_frequency`` is a *global* filter over the whole database
    (:class:`~repro.sequences.kmers.KmerExtractor` counts occurrences across
    every sequence), so queries cannot recompute it from their own residues;
    the index persists the banned set and the query-side builder drops these
    ids before substitution — exactly the entries the database build never
    saw.
    """
    if params.max_kmer_frequency is None:
        return np.zeros(0, dtype=np.int64)
    extractor = KmerExtractor(
        k=params.kmer_length, alphabet=params.alphabet, max_kmer_frequency=None
    )
    _, kmer_ids, _ = extractor.extract(sequences)
    if kmer_ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    unique, counts = np.unique(kmer_ids, return_counts=True)
    return unique[counts > params.max_kmer_frequency].astype(np.int64)


def effective_blocking(params: PastisParams, n_sequences: int) -> tuple[int, int]:
    """The (br, bc) a pipeline run over ``n_sequences`` would actually use
    (blocking factors are clamped to the matrix dimensions)."""
    br, bc = params.blocking_factors()
    return min(br, n_sequences), min(bc, n_sequences)


def build_index(
    sequences: SequenceSet,
    params: PastisParams,
    out_dir: str | Path,
    *,
    force: bool = False,
) -> "KmerIndex":
    """Build and persist the database index; returns the opened index."""
    if len(sequences) < 1:
        raise ValueError("need at least one database sequence to index")
    if not is_perfect_square(params.nodes):
        raise ValueError(
            f"nodes={params.nodes} must be a perfect square (2D process grid requirement)"
        )
    out = Path(out_dir)
    manifest_path = out / MANIFEST_NAME
    if manifest_path.exists() and not force:
        raise ServeIndexError(
            f"refusing to overwrite existing index at {out} (pass force=True / --force)"
        )
    shard_dir = out / SHARD_DIR
    shard_dir.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    comm = SimCommunicator(params.nodes)
    coo, info = build_kmer_coo(sequences, params)
    bt = DistSparseMatrix.from_global_coo(coo.transpose(), comm)
    _, bc = effective_blocking(params, len(sequences))
    schedule = BlockSchedule(n_rows=len(sequences), n_cols=len(sequences), br=1, bc=bc)

    stripes: list[dict] = []
    shard_bytes = 0
    for c in range(bc):
        col_range = schedule.col_range(c)
        stripe = bt.col_stripe(col_range)
        names, nbytes = write_stripe_shards(shard_dir, c, stripe)
        shard_bytes += nbytes
        stripes.append(
            {
                "stripe": c,
                "col_range": [int(col_range[0]), int(col_range[1])],
                "digest": stripe_digest(stripe),
                "files": names,
                "nnz": int(stripe.nnz),
                "bytes": int(nbytes),
            }
        )

    banned = banned_kmer_ids(sequences, params)
    buffer = io.BytesIO()
    np.savez(
        buffer,
        data=sequences.data,
        offsets=sequences.offsets,
        names=np.asarray([str(name) for name in sequences.names], dtype=np.str_),
        banned_kmers=banned,
    )
    sequences_payload = buffer.getvalue()
    atomic_write_bytes(out / SEQUENCES_NAME, sequences_payload)

    manifest = {
        "format": INDEX_FORMAT,
        "version": INDEX_VERSION,
        "n_sequences": len(sequences),
        "kmer_space": int(coo.shape[1]),
        "nnz": int(coo.nnz),
        "bc": bc,
        "alphabet": sequences.alphabet.name,
        "sequence_digest": sequence_digest(sequences),
        "params": index_params_token(params),
        "banned_kmer_count": int(banned.size),
        "kmer_info": info.as_dict(),
        "stripes": stripes,
        "shard_bytes": int(shard_bytes),
        "sequences_bytes": len(sequences_payload),
        "build_seconds": time.perf_counter() - t0,
    }
    # manifest last: its existence certifies every artifact above it
    atomic_write_text(manifest_path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return KmerIndex.open(out)


@dataclass
class KmerIndex:
    """An opened on-disk index (manifest parsed, payloads loaded lazily)."""

    path: Path
    manifest: dict
    _sequences: SequenceSet | None = field(default=None, repr=False)
    _banned: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def open(cls, path: str | Path) -> "KmerIndex":
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise ServeIndexError(f"no index manifest at {manifest_path}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise IndexIntegrityError(f"unreadable index manifest {manifest_path}: {exc}") from exc
        if manifest.get("format") != INDEX_FORMAT:
            raise ServeIndexError(
                f"{manifest_path} is not a {INDEX_FORMAT} manifest "
                f"(format={manifest.get('format')!r})"
            )
        if manifest.get("version") != INDEX_VERSION:
            raise IndexCompatibilityError(
                f"index version {manifest.get('version')} unsupported "
                f"(this build reads version {INDEX_VERSION})"
            )
        return cls(path=path, manifest=manifest)

    # ------------------------------------------------------------------ manifest facts
    @property
    def n_sequences(self) -> int:
        return int(self.manifest["n_sequences"])

    @property
    def kmer_space(self) -> int:
        return int(self.manifest["kmer_space"])

    @property
    def nnz(self) -> int:
        return int(self.manifest["nnz"])

    @property
    def bc(self) -> int:
        return int(self.manifest["bc"])

    @property
    def sequence_digest(self) -> str:
        return str(self.manifest["sequence_digest"])

    @property
    def col_ranges(self) -> list[tuple[int, int]]:
        return [
            (int(entry["col_range"][0]), int(entry["col_range"][1]))
            for entry in self.manifest["stripes"]
        ]

    def kmer_info(self) -> KmerMatrixInfo:
        """The database build's matrix facts, replayed from the manifest."""
        return KmerMatrixInfo(**self.manifest["kmer_info"])

    def payload_bytes(self) -> int:
        """Bytes a serving run reads from disk (shards + sequences)."""
        return int(self.manifest["shard_bytes"]) + int(self.manifest["sequences_bytes"])

    # ------------------------------------------------------------------ payloads
    def sequences(self) -> SequenceSet:
        """The database sequences, digest-verified against the manifest."""
        if self._sequences is not None:
            return self._sequences
        path = self.path / SEQUENCES_NAME
        try:
            with np.load(io.BytesIO(path.read_bytes()), allow_pickle=False) as npz:
                alphabet_name = str(self.manifest["alphabet"])
                if alphabet_name not in _ALPHABETS:
                    raise IndexCompatibilityError(
                        f"index alphabet {alphabet_name!r} unknown to this build"
                    )
                sequences = SequenceSet(
                    data=npz["data"],
                    offsets=npz["offsets"],
                    names=[str(name) for name in npz["names"]],
                    alphabet=_ALPHABETS[alphabet_name],
                )
                self._banned = np.asarray(npz["banned_kmers"], dtype=np.int64)
        except ServeIndexError:
            raise
        except Exception as exc:
            raise IndexIntegrityError(f"unreadable index payload {path}: {exc}") from exc
        digest = sequence_digest(sequences)
        if digest != self.sequence_digest:
            raise IndexIntegrityError(
                f"stale index: {path} digests to {digest[:16]}… but the manifest "
                f"stamps {self.sequence_digest[:16]}… — rebuild the index instead "
                "of serving wrong answers"
            )
        self._sequences = sequences
        return sequences

    def banned_kmers(self) -> np.ndarray:
        """The database's globally banned k-mer ids (see :func:`banned_kmer_ids`)."""
        if self._banned is None:
            self.sequences()
        return self._banned

    def stripe(self, c: int, comm: SimCommunicator) -> DistSparseMatrix:
        """Column stripe ``c`` of ``Bᵀ``, digest-verified against the manifest."""
        entry = self.manifest["stripes"][c]
        shape = (self.kmer_space, self.n_sequences)
        try:
            stripe = load_stripe_shards(self.path / SHARD_DIR, c, shape, comm)
        except Exception as exc:
            raise IndexIntegrityError(
                f"corrupt index shard for stripe {c} "
                f"(under {self.path / SHARD_DIR / shard_filename(c, 0)}…): {exc}"
            ) from exc
        digest = stripe_digest(stripe)
        if digest != entry["digest"]:
            raise IndexIntegrityError(
                f"stale index: stripe {c} digests to {digest[:16]}… but the "
                f"manifest stamps {entry['digest'][:16]}…"
            )
        return stripe

    def matrix(self, comm: SimCommunicator) -> ShardedStripeMatrix:
        """The database operand ``Bᵀ`` as a lazy disk-backed SUMMA operand."""
        return ShardedStripeMatrix(
            shape=(self.kmer_space, self.n_sequences),
            nnz=self.nnz,
            col_ranges=self.col_ranges,
            loader=lambda c: self.stripe(c, comm),
        )

    # ------------------------------------------------------------------ checks
    def validate_params(self, params: PastisParams) -> None:
        """Refuse parameter sets the index cannot serve bit-identically."""
        want = index_params_token(params)
        have = self.manifest["params"]
        mismatches = {
            key: (have.get(key), want[key]) for key in want if have.get(key) != want[key]
        }
        if mismatches:
            detail = ", ".join(
                f"{key}: index={have!r} run={want!r}"
                for key, (have, want) in sorted(mismatches.items())
            )
            raise IndexCompatibilityError(
                f"index at {self.path} was built with different parameters ({detail})"
            )
        _, bc = effective_blocking(params, self.n_sequences)
        if bc != self.bc:
            raise IndexCompatibilityError(
                f"index at {self.path} is blocked into bc={self.bc} column stripes "
                f"but the run's blocking asks for bc={bc}; rebuild the index or "
                "match num_blocks/blocking to it"
            )

    def verify(self, comm: SimCommunicator | None = None) -> dict:
        """Deep integrity check: every payload loaded and digest-verified."""
        comm = comm or SimCommunicator(int(self.manifest["params"]["nodes"]))
        sequences = self.sequences()
        stripe_nnz = 0
        for c in range(self.bc):
            stripe_nnz += self.stripe(c, comm).nnz
        if stripe_nnz != self.nnz:
            raise IndexIntegrityError(
                f"stripe nnz total {stripe_nnz} != manifest nnz {self.nnz}"
            )
        return {
            "ok": True,
            "n_sequences": len(sequences),
            "stripes": self.bc,
            "nnz": stripe_nnz,
            "banned_kmers": int(self.banned_kmers().size),
            "payload_bytes": self.payload_bytes(),
        }

    def summary(self) -> dict:
        """Manifest-only facts for ``python -m repro.serve inspect``."""
        return {
            "path": str(self.path),
            "format": self.manifest["format"],
            "version": self.manifest["version"],
            "n_sequences": self.n_sequences,
            "kmer_space": self.kmer_space,
            "nnz": self.nnz,
            "bc": self.bc,
            "alphabet": self.manifest["alphabet"],
            "sequence_digest": self.sequence_digest,
            "params": dict(self.manifest["params"]),
            "banned_kmers": int(self.manifest["banned_kmer_count"]),
            "payload_bytes": self.payload_bytes(),
            "build_seconds": float(self.manifest["build_seconds"]),
        }
