"""``python -m repro.serve`` — build, inspect and query the serve index.

Subcommands
-----------
``build``
    Build a database index from any sequence provider spec::

        python -m repro.serve build --source synthetic:n_sequences=60,seed=7 \\
            --out ./db-index --kmer-length 5 --num-blocks 4

``inspect``
    Print an index's manifest facts; ``--verify`` additionally loads and
    digest-checks every payload::

        python -m repro.serve inspect ./db-index --verify

``query``
    Run one query batch against an index.  Matrix-defining parameters
    (k-mer length, seed alphabet, substitutes, frequency cap, nodes) are
    taken from the index manifest, so a query run can never silently
    mismatch its database::

        python -m repro.serve query --index ./db-index \\
            --source fasta:queries.fasta --report out.json
"""

from __future__ import annotations

import argparse
import json
import sys

from ..core.params import PastisParams
from .index import KmerIndex, build_index
from .providers import available_providers, load_sequences


def _add_matrix_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kmer-length", type=int, default=6, help="seed k-mer length")
    parser.add_argument(
        "--seed-alphabet", choices=("protein", "murphy10"), default="protein"
    )
    parser.add_argument(
        "--substitute-kmers", type=int, default=0, help="substitute k-mers per seed"
    )
    parser.add_argument(
        "--max-kmer-frequency", type=int, default=None,
        help="discard k-mers occurring at more than this many positions",
    )
    parser.add_argument("--nodes", type=int, default=4, help="virtual ranks (perfect square)")
    parser.add_argument(
        "--num-blocks", type=int, default=1,
        help="output blocks (drives the index's column striping)",
    )


def _source_help() -> str:
    return (
        "sequence provider spec, e.g. 'fasta:db.fasta' or "
        f"'synthetic:n_sequences=40,seed=3' (providers: {', '.join(available_providers())})"
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Build, inspect and query the persistent database k-mer index.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build a database index from a sequence source")
    build.add_argument("--source", required=True, help=_source_help())
    build.add_argument("--out", required=True, help="index output directory")
    build.add_argument("--force", action="store_true", help="overwrite an existing index")
    _add_matrix_params(build)

    inspect = sub.add_parser("inspect", help="print an index's manifest facts")
    inspect.add_argument("index_dir", help="index directory")
    inspect.add_argument(
        "--verify", action="store_true",
        help="load and digest-check every payload (sequences + all stripes)",
    )

    query = sub.add_parser("query", help="run one query batch against an index")
    query.add_argument("--index", required=True, help="index directory")
    query.add_argument("--source", required=True, help=_source_help())
    query.add_argument(
        "--dedup", action="store_true",
        help="query_dedup=True: the sharding/contract semantics (queries must "
        "be database members)",
    )
    query.add_argument("--load-balancing", choices=("index", "triangularity"), default="index")
    query.add_argument("--ani-threshold", type=float, default=0.30)
    query.add_argument("--coverage-threshold", type=float, default=0.70)
    query.add_argument("--common-kmer-threshold", type=int, default=2)
    query.add_argument("--report", default=None, help="write a JSON report to this path")
    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    sequences = load_sequences(args.source)
    params = PastisParams(
        kmer_length=args.kmer_length,
        seed_alphabet=args.seed_alphabet,
        substitute_kmers=args.substitute_kmers,
        max_kmer_frequency=args.max_kmer_frequency,
        nodes=args.nodes,
        num_blocks=args.num_blocks,
        cache_dir=None,
    )
    index = build_index(sequences, params, args.out, force=args.force)
    summary = index.summary()
    print(f"built index at {summary['path']}")
    for key in ("n_sequences", "nnz", "bc", "banned_kmers", "payload_bytes"):
        print(f"  {key}: {summary[key]}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    index = KmerIndex.open(args.index_dir)
    summary = index.summary()
    if args.verify:
        summary["verify"] = index.verify()
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from ..core.pipeline import PastisPipeline
    from ..io.report import run_report

    index = KmerIndex.open(args.index)
    stored = index.manifest["params"]
    params = PastisParams(
        mode="query",
        index_dir=args.index,
        query_dedup=args.dedup,
        # matrix-defining knobs come from the index manifest: a query run
        # can never silently mismatch the database it searches
        kmer_length=int(stored["kmer_length"]),
        seed_alphabet=str(stored["seed_alphabet"]),
        substitute_kmers=int(stored["substitute_kmers"]),
        max_kmer_frequency=stored["max_kmer_frequency"],
        nodes=int(stored["nodes"]),
        blocking=(1, index.bc),
        load_balancing=args.load_balancing,
        ani_threshold=args.ani_threshold,
        coverage_threshold=args.coverage_threshold,
        common_kmer_threshold=args.common_kmer_threshold,
        cache_dir=None,
    )
    queries = load_sequences(args.source)
    result = PastisPipeline(params).run(queries)
    report = run_report(result.stats)
    print(
        f"queries: {len(queries)}  matches: {result.stats.similar_pairs}  "
        f"candidates: {result.stats.candidates_discovered}  "
        f"aligned: {result.stats.alignments_performed}"
    )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True, default=str)
        print(f"report written to {args.report}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.command == "build":
        return _cmd_build(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    return _cmd_query(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
