"""Version information for the PASTIS reproduction package."""

__version__ = "1.0.0"

#: Short identifier of the paper being reproduced.
PAPER = (
    "Extreme-scale many-against-many protein similarity search, "
    "Selvitopi et al., SC 2022 (arXiv:2303.01845)"
)
