"""repro — reproduction of PASTIS: extreme-scale many-against-many protein similarity search.

This package reimplements, in pure Python/NumPy, the full system described in
*"Extreme-scale many-against-many protein similarity search"* (Selvitopi et
al., SC 2022):

* a sequence substrate (FASTA I/O, k-mer extraction, synthetic metagenome
  generation) — :mod:`repro.sequences`;
* local semiring sparse matrices and SpGEMM — :mod:`repro.sparse`;
* Smith–Waterman alignment kernels including an ADEPT-like batched "GPU"
  aligner — :mod:`repro.align`;
* a simulated MPI runtime with a 2D process grid and an alpha-beta
  communication cost model — :mod:`repro.mpi`;
* 2D-distributed sparse matrices, Sparse SUMMA and the paper's Blocked 2D
  Sparse SUMMA — :mod:`repro.distsparse`;
* the PASTIS pipeline itself (overlap detection, load balancing,
  pre-blocking, similarity-graph construction) — :mod:`repro.core`;
* similarity-graph clustering into protein families (sparse Markov
  clustering on the SpGEMM kernel registry, union-find components,
  quality metrics) — :mod:`repro.graph`;
* baselines (brute force, MMseqs2-like, DIAMOND-like) — :mod:`repro.baselines`;
* an analytic performance model used to project paper-scale experiments —
  :mod:`repro.perfmodel`.

Quickstart
----------
>>> from repro import synthetic_dataset, PastisPipeline, PastisParams
>>> seqs = synthetic_dataset(n_sequences=200, seed=0)
>>> pipeline = PastisPipeline(PastisParams(kmer_length=5))
>>> result = pipeline.run(seqs)
>>> result.similarity_graph.num_edges >= 0
True
"""

from .version import __version__, PAPER
from .config import DEFAULTS, ReproConfig
from .sequences import SequenceSet, synthetic_dataset, read_fasta, write_fasta
from .core import PastisParams, PastisPipeline, SearchResult, SimilarityGraph  # noqa: E402
from .graph import ClusterParams, ClusteringResult, cluster_similarity_graph  # noqa: E402

__all__ = [
    "__version__",
    "PAPER",
    "DEFAULTS",
    "ReproConfig",
    "SequenceSet",
    "synthetic_dataset",
    "read_fasta",
    "write_fasta",
    "PastisParams",
    "PastisPipeline",
    "SearchResult",
    "SimilarityGraph",
    "ClusterParams",
    "ClusteringResult",
    "cluster_similarity_graph",
]
