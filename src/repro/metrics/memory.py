"""Memory accounting.

The paper's central constraint is memory: the unblocked overlap matrix of
even a 20M-sequence search does not fit on 100 Summit nodes (Fig. 5 caption
notes the single-block search "could not be performed on fewer nodes").  The
tracker records the peak bytes held per component so the blocking/memory
trade-off can be reported and asserted on.
"""

from __future__ import annotations

from collections import defaultdict


class MemoryTracker:
    """Tracks current and peak bytes per named component."""

    def __init__(self) -> None:
        self._current: dict[str, int] = defaultdict(int)
        self._peak: dict[str, int] = defaultdict(int)

    def allocate(self, component: str, nbytes: int) -> None:
        """Record an allocation."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self._current[component] += nbytes
        self._peak[component] = max(self._peak[component], self._current[component])

    def release(self, component: str, nbytes: int) -> None:
        """Record a release (clamped at zero)."""
        self._current[component] = max(0, self._current[component] - nbytes)

    def set_usage(self, component: str, nbytes: int) -> None:
        """Set the current usage of a component directly."""
        if nbytes < 0:
            raise ValueError("usage must be non-negative")
        self._current[component] = nbytes
        self._peak[component] = max(self._peak[component], nbytes)

    def current(self, component: str) -> int:
        """Current bytes of a component."""
        return self._current[component]

    def peak(self, component: str) -> int:
        """Peak bytes of a component."""
        return self._peak[component]

    def peak_total(self) -> int:
        """Peak of the *sum* is not tracked; this returns the sum of peaks
        (a safe upper bound on the true peak)."""
        return sum(self._peak.values())

    def summary(self) -> dict[str, int]:
        """Peak bytes per component."""
        return dict(sorted(self._peak.items()))
