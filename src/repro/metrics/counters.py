"""Throughput counters: alignments per second and cell updates per second.

These follow §VII of the paper exactly:

* **alignments per second** — total pairwise alignments performed divided by
  the *entire* parallel runtime;
* **CUPS** — DP cells updated divided by the *alignment kernel* time only
  (the forward-scoring time), reported in tera-CUPS at scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RateCounters:
    """Accumulates the quantities behind the paper's headline rates."""

    alignments: int = 0
    cells: int = 0
    candidates: int = 0
    similar_pairs: int = 0
    total_seconds: float = 0.0
    kernel_seconds: float = 0.0

    def alignments_per_second(self) -> float:
        """Alignments performed per second of total runtime."""
        return self.alignments / self.total_seconds if self.total_seconds > 0 else 0.0

    def cups(self) -> float:
        """Cell updates per second over the alignment kernel time."""
        return self.cells / self.kernel_seconds if self.kernel_seconds > 0 else 0.0

    def tcups(self) -> float:
        """CUPS in units of 10^12 (as reported in Table IV)."""
        return self.cups() / 1e12

    def merge(self, other: "RateCounters") -> "RateCounters":
        """Combine counters from two phases/runs."""
        return RateCounters(
            alignments=self.alignments + other.alignments,
            cells=self.cells + other.cells,
            candidates=self.candidates + other.candidates,
            similar_pairs=self.similar_pairs + other.similar_pairs,
            total_seconds=self.total_seconds + other.total_seconds,
            kernel_seconds=self.kernel_seconds + other.kernel_seconds,
        )


def tcups(cells: int, kernel_seconds: float) -> float:
    """Tera cell-updates per second."""
    return cells / kernel_seconds / 1e12 if kernel_seconds > 0 else 0.0


def format_rate(value: float) -> str:
    """Human-readable rate (e.g. ``690.6 M/s``)."""
    for factor, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= factor:
            return f"{value / factor:.1f} {suffix}/s"
    return f"{value:.1f} /s"
