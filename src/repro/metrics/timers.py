"""Wall-clock timers for pipeline components."""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A context-manager stopwatch.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None


def time_call(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` and return ``(result, elapsed_seconds)``.

    The wall-clock measurement primitive of the measured-clock executor:
    stage implementations wrap their work in one call so schedulers receive
    real seconds through the same interface the modeled clock uses.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


class TimerRegistry:
    """A set of named accumulating timers (one per pipeline component)."""

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = defaultdict(Timer)

    def timer(self, name: str) -> Timer:
        """The timer with the given name (created on first use)."""
        return self._timers[name]

    def elapsed(self, name: str) -> float:
        """Accumulated seconds of one timer (0 if never used)."""
        return self._timers[name].elapsed if name in self._timers else 0.0

    def summary(self) -> dict[str, float]:
        """All timers' accumulated seconds."""
        return {name: timer.elapsed for name, timer in sorted(self._timers.items())}

    def total(self) -> float:
        """Sum over all timers."""
        return sum(t.elapsed for t in self._timers.values())
