"""Parallel-scaling metrics: speedup, strong- and weak-scaling efficiency."""

from __future__ import annotations


def speedup(base_time: float, time_at_scale: float, base_units: float, units_at_scale: float) -> float:
    """Speedup relative to the base configuration, normalized by resource units.

    ``speedup = (base_time / time_at_scale)`` — the resource counts are used
    by the efficiency helpers below.
    """
    if time_at_scale <= 0:
        return 0.0
    del base_units, units_at_scale
    return base_time / time_at_scale


def parallel_efficiency(
    base_time: float, time_at_scale: float, base_units: float, units_at_scale: float
) -> float:
    """Strong-scaling parallel efficiency in [0, 1]:

    ``(base_time / time_at_scale) / (units_at_scale / base_units)``.
    """
    if time_at_scale <= 0 or units_at_scale <= 0 or base_units <= 0:
        return 0.0
    return (base_time / time_at_scale) / (units_at_scale / base_units)


def weak_scaling_efficiency(base_time: float, time_at_scale: float) -> float:
    """Weak-scaling efficiency: base time over time at scale (ideal = 1.0).

    The problem size per processor is held constant, so the runtime would
    ideally stay flat.
    """
    if time_at_scale <= 0:
        return 0.0
    return base_time / time_at_scale
