"""Load-imbalance statistics (the min/avg/max bars of Fig. 7)."""

from __future__ import annotations

import numpy as np

from ..mpi.costmodel import TimeBreakdown


def imbalance_stats(per_rank_values: np.ndarray | list[float]) -> TimeBreakdown:
    """Min/avg/max of a per-rank metric (aligned pairs, DP cells, seconds...)."""
    return TimeBreakdown.from_values(per_rank_values)


def imbalance_percent(per_rank_values: np.ndarray | list[float]) -> float:
    """The paper's imbalance metric: ``(max/avg - 1) * 100`` percent."""
    return imbalance_stats(per_rank_values).imbalance_percent
