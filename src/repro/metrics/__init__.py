"""Measurement utilities: timers, rate counters, imbalance, scaling efficiency.

These implement the three reporting mechanisms of §VII of the paper: wall
timers per component, alignments-per-second over the whole run, and cell
updates per second (CUPS) over the alignment kernel time, plus the
min/avg/max load-imbalance and the parallel-efficiency calculations used in
the figures.
"""

from .timers import Timer, TimerRegistry, time_call
from .counters import RateCounters, tcups, format_rate
from .imbalance import imbalance_stats, imbalance_percent
from .efficiency import speedup, parallel_efficiency, weak_scaling_efficiency
from .memory import MemoryTracker

__all__ = [
    "Timer",
    "TimerRegistry",
    "time_call",
    "RateCounters",
    "tcups",
    "format_rate",
    "imbalance_stats",
    "imbalance_percent",
    "speedup",
    "parallel_efficiency",
    "weak_scaling_efficiency",
    "MemoryTracker",
]
